//! Shared harness for reproducing every table of the paper.
//!
//! The criterion benches under `benches/` measure *per-step* costs of each
//! integration level; the printable harnesses here run *complete*
//! simulations with wall-clock timing and NRMSE computation, producing the
//! same rows as the paper's Tables I–III. The `examples/table*.rs`
//! binaries of the workspace print them.

use std::time::{Duration, Instant};

use amsim::Simulation;
use amsvp_core::circuits::{self, SquareWave};
use amsvp_core::{Abstraction, SignalFlowModel};
use de::{Kernel, SimTime};
use eln::{ElnNetwork, Method, NodeId, SourceId, Transient};
use obs::Obs;
use vams_ast::Module;
use vp::{build_tdf_cluster, new_bridge, CompiledAnalog, ElnAnalog};

/// One benchmark circuit with everything each integration level needs.
pub struct CircuitSpec {
    /// Paper label (2IN, RC1, RC20, OA).
    pub label: &'static str,
    /// Verilog-AMS source.
    pub source: String,
    /// Parsed module.
    pub module: Module,
    /// Number of analog inputs.
    pub inputs: usize,
    /// Hand-built ELN model: network, stimulus sources, output node.
    pub eln: (ElnNetwork, Vec<SourceId>, NodeId),
}

/// The paper's four benchmark circuits (§V-A).
pub fn paper_circuits() -> Vec<CircuitSpec> {
    let mk = |label: &'static str,
              source: String,
              inputs: usize,
              eln: (ElnNetwork, Vec<SourceId>, NodeId)| {
        let module = vams_parser::parse_module(&source).expect("fixtures parse");
        CircuitSpec {
            label,
            source,
            module,
            inputs,
            eln,
        }
    };
    let (n2, s2, o2) = vp::two_inputs_eln();
    let (nr1, sr1, or1) = vp::rc_ladder_eln(1);
    let (nr20, sr20, or20) = vp::rc_ladder_eln(20);
    let (noa, soa, ooa) = vp::opamp_eln();
    vec![
        mk("2IN", circuits::two_inputs(), 2, (n2, s2, o2)),
        mk("RC1", circuits::rc_ladder(1), 1, (nr1, vec![sr1], or1)),
        mk("RC20", circuits::rc_ladder(20), 1, (nr20, vec![sr20], or20)),
        mk("OA", circuits::opamp(), 1, (noa, vec![soa], ooa)),
    ]
}

/// Workload parameters (paper defaults: Δt = 50 ns, 1 ms square wave).
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Time step in seconds.
    pub dt: f64,
    /// Simulated duration in seconds.
    pub sim_time: f64,
    /// Stimulus.
    pub stim: SquareWave,
}

impl Workload {
    /// The paper's Table I workload scaled to `sim_time` seconds
    /// (the paper used 100 ms; the full duration is practical but slow
    /// for the interpreted reference simulator).
    pub fn table1(sim_time: f64) -> Workload {
        Workload {
            dt: 50e-9,
            sim_time,
            stim: SquareWave::paper(),
        }
    }

    /// Number of steps in the workload.
    pub fn steps(&self) -> usize {
        (self.sim_time / self.dt).round() as usize
    }
}

/// Builds the abstracted model of a circuit at the workload's Δt.
pub fn abstracted_model(spec: &CircuitSpec, wl: &Workload) -> SignalFlowModel {
    abstracted_model_with(spec, wl, &Obs::none())
}

/// [`abstracted_model`] with an instrumentation collector attached, so
/// the pipeline reports per-phase timings (`pipeline/acquire`, ...).
pub fn abstracted_model_with(spec: &CircuitSpec, wl: &Workload, obs: &Obs) -> SignalFlowModel {
    Abstraction::new(&spec.module)
        .dt(wl.dt)
        .output("V(out)")
        .collector(obs.clone())
        .build()
        .expect("paper circuits abstract cleanly")
}

/// Integration levels of Tables I–III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Interpreted conservative reference (Verilog-AMS / ELDO stand-in).
    VamsRef,
    /// Hand-built ELN inside the DE kernel.
    Eln,
    /// Abstracted model inside a TDF cluster.
    Tdf,
    /// Abstracted model as a DE process.
    De,
    /// Abstracted model in a plain loop.
    Cpp,
}

impl Level {
    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Level::VamsRef => "Verilog-AMS",
            Level::Eln => "SC-AMS/ELN",
            Level::Tdf => "SC-AMS/TDF",
            Level::De => "SC-DE",
            Level::Cpp => "C++",
        }
    }

    /// Generation method column of the paper (manual vs algorithmic).
    pub fn method(self) -> &'static str {
        match self {
            Level::VamsRef | Level::Eln => "manual",
            _ => "algo",
        }
    }
}

/// Runs one level of Table I/II in isolation and returns the wall time.
///
/// # Panics
///
/// Panics if a solver fails mid-run (paper circuits never do).
pub fn run_isolated(spec: &CircuitSpec, level: Level, wl: &Workload) -> Duration {
    run_isolated_with(spec, level, wl, &Obs::none())
}

/// [`run_isolated`] with an instrumentation collector: every substrate
/// reports its kernel counters (`de.*`, `tdf.*`, `eln.*`, `amsim.*`) and
/// the pipeline its per-phase timings.
///
/// # Panics
///
/// Panics if a solver fails mid-run (paper circuits never do).
pub fn run_isolated_with(spec: &CircuitSpec, level: Level, wl: &Workload, obs: &Obs) -> Duration {
    let steps = wl.steps();
    match level {
        Level::VamsRef => {
            let mut sim = Simulation::new(&spec.module)
                .dt(wl.dt)
                .output("V(out)")
                .collector(obs.clone())
                .build()
                .expect("lowers");
            let inputs = vec![0.0; spec.inputs];
            let start = Instant::now();
            let mut t = 0.0;
            let mut buf = inputs;
            for _ in 0..steps {
                let u = wl.stim.value(t);
                buf.iter_mut().for_each(|v| *v = u);
                sim.step(&buf);
                t += wl.dt;
            }
            sim.flush_counters();
            start.elapsed()
        }
        Level::Eln => {
            let (net, sources, out) = &spec.eln;
            let solver = Transient::new(net)
                .dt(wl.dt)
                .method(Method::BackwardEuler)
                .collector(obs.clone())
                .build()
                .expect("assembles");
            let bridge = new_bridge();
            let mut k = Kernel::new();
            k.set_collector(obs.clone());
            k.register(ElnAnalog::new(
                solver,
                sources.clone(),
                *out,
                bridge,
                wl.stim,
            ));
            let start = Instant::now();
            k.run_until(SimTime::from_seconds(wl.sim_time - wl.dt / 2.0))
                .expect("no delta loops");
            start.elapsed()
        }
        Level::Tdf => {
            let model = abstracted_model_with(spec, wl, obs);
            let bridge = new_bridge();
            let mut exec = build_tdf_cluster(model, bridge, wl.stim).expect("fixed pipeline");
            exec.set_collector(obs.clone());
            let start = Instant::now();
            exec.run_until(SimTime::from_seconds(wl.sim_time));
            start.elapsed()
        }
        Level::De => {
            let model = abstracted_model_with(spec, wl, obs);
            let bridge = new_bridge();
            let mut k = Kernel::new();
            k.set_collector(obs.clone());
            k.register(CompiledAnalog::new(model, bridge, wl.stim));
            let start = Instant::now();
            k.run_until(SimTime::from_seconds(wl.sim_time - wl.dt / 2.0))
                .expect("no delta loops");
            start.elapsed()
        }
        Level::Cpp => {
            let mut model = abstracted_model_with(spec, wl, obs);
            let mut buf = vec![0.0; spec.inputs];
            let start = Instant::now();
            let mut t = 0.0;
            for _ in 0..steps {
                let u = wl.stim.value(t);
                buf.iter_mut().for_each(|v| *v = u);
                model.step(&buf);
                t += wl.dt;
            }
            let elapsed = start.elapsed();
            obs.time("bench.cpp_loop", elapsed.as_secs_f64());
            elapsed
        }
    }
}

/// Waveform of the conservative reference, sampled every step.
pub fn reference_waveform(spec: &CircuitSpec, wl: &Workload, steps: usize) -> Vec<f64> {
    let mut sim = Simulation::new(&spec.module)
        .dt(wl.dt)
        .output("V(out)")
        .build()
        .expect("lowers");
    let mut buf = vec![0.0; spec.inputs];
    let mut out = Vec::with_capacity(steps);
    let mut t = 0.0;
    for _ in 0..steps {
        let u = wl.stim.value(t);
        buf.iter_mut().for_each(|v| *v = u);
        sim.step(&buf);
        out.push(sim.output(0));
        t += wl.dt;
    }
    out
}

/// Waveform of the abstracted model (identical numerics for TDF/DE/C++).
pub fn abstracted_waveform(spec: &CircuitSpec, wl: &Workload, steps: usize) -> Vec<f64> {
    let mut model = abstracted_model(spec, wl);
    let mut buf = vec![0.0; spec.inputs];
    let mut out = Vec::with_capacity(steps);
    let mut t = 0.0;
    for _ in 0..steps {
        let u = wl.stim.value(t);
        buf.iter_mut().for_each(|v| *v = u);
        model.step(&buf);
        out.push(model.output(0));
        t += wl.dt;
    }
    out
}

/// Waveform of the hand-built ELN model.
pub fn eln_waveform(spec: &CircuitSpec, wl: &Workload, steps: usize) -> Vec<f64> {
    let (net, sources, node) = &spec.eln;
    let mut solver = Transient::new(net)
        .dt(wl.dt)
        .method(Method::BackwardEuler)
        .build()
        .expect("assembles");
    let mut out = Vec::with_capacity(steps);
    let mut t = 0.0;
    for _ in 0..steps {
        let u = wl.stim.value(t);
        for &s in sources {
            solver.set_source(s, u);
        }
        solver.try_step().unwrap();
        out.push(solver.node_voltage(*node));
        t += wl.dt;
    }
    out
}

/// A formatted row of Table I/II.
#[derive(Debug, Clone)]
pub struct Row {
    /// Circuit label.
    pub circuit: &'static str,
    /// Integration level.
    pub level: Level,
    /// Wall-clock simulation time.
    pub wall: Duration,
    /// NRMSE vs the conservative reference (`None` for the reference row).
    pub nrmse: Option<f64>,
    /// Speed-up vs the table's baseline row.
    pub speedup: f64,
}

/// Computes the full Table I (all circuits × all levels) at a scaled
/// simulated time, including NRMSE over `accuracy_steps` samples.
pub fn table1_rows(sim_time: f64, accuracy_steps: usize) -> Vec<Row> {
    table1_rows_with(sim_time, accuracy_steps, &Obs::none())
}

/// [`table1_rows`] with an instrumentation collector threaded through
/// every level run; pair with [`obs::Obs::recording`] and
/// [`obs::Report::write_json`] to emit `BENCH_obs.json`.
pub fn table1_rows_with(sim_time: f64, accuracy_steps: usize, obs: &Obs) -> Vec<Row> {
    let wl = Workload::table1(sim_time);
    let mut rows = Vec::new();
    for spec in paper_circuits() {
        // NRMSE normalizes by the reference range, so the accuracy window
        // must contain at least one full stimulus period; shorten the
        // period if the window is smaller than the paper's 1 ms wave.
        let acc_wl = Workload {
            stim: SquareWave {
                period: wl.stim.period.min(accuracy_steps as f64 * wl.dt),
                ..wl.stim
            },
            ..wl
        };
        let reference = reference_waveform(&spec, &acc_wl, accuracy_steps);
        let abstracted = abstracted_waveform(&spec, &acc_wl, accuracy_steps);
        let eln = eln_waveform(&spec, &acc_wl, accuracy_steps);
        let nrmse_abs = linalg::nrmse(&abstracted, &reference);
        let nrmse_eln = linalg::nrmse(&eln, &reference);

        let baseline = run_isolated_with(&spec, Level::VamsRef, &wl, obs);
        for level in [
            Level::VamsRef,
            Level::Eln,
            Level::Tdf,
            Level::De,
            Level::Cpp,
        ] {
            let wall = if level == Level::VamsRef {
                baseline
            } else {
                run_isolated_with(&spec, level, &wl, obs)
            };
            let nrmse = match level {
                Level::VamsRef => None,
                Level::Eln => Some(nrmse_eln),
                _ => Some(nrmse_abs),
            };
            rows.push(Row {
                circuit: spec.label,
                level,
                wall,
                nrmse,
                speedup: baseline.as_secs_f64() / wall.as_secs_f64(),
            });
        }
    }
    rows
}

/// Computes Table II rows (no reference simulator; speed-ups vs ELN).
pub fn table2_rows(sim_time: f64) -> Vec<Row> {
    let wl = Workload::table1(sim_time);
    let mut rows = Vec::new();
    for spec in paper_circuits() {
        let baseline = run_isolated(&spec, Level::Eln, &wl);
        for level in [Level::Eln, Level::Tdf, Level::De, Level::Cpp] {
            let wall = if level == Level::Eln {
                baseline
            } else {
                run_isolated(&spec, level, &wl)
            };
            rows.push(Row {
                circuit: spec.label,
                level,
                wall,
                nrmse: None,
                speedup: baseline.as_secs_f64() / wall.as_secs_f64(),
            });
        }
    }
    rows
}

/// One row of Table III (whole-platform run).
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// Circuit label.
    pub circuit: &'static str,
    /// Integration description (paper row).
    pub level: &'static str,
    /// Wall-clock time of the platform run.
    pub wall: Duration,
    /// Speed-up vs the co-simulation baseline.
    pub speedup: f64,
    /// Instructions the CPU retired.
    pub instructions: u64,
    /// UART bytes the firmware transmitted.
    pub uart_bytes: usize,
}

/// Computes the full Table III: the virtual platform (MIPS + UART + APB +
/// analog component) with the analog side integrated at every level.
pub fn table3_rows(sim_time: f64) -> Vec<PlatformRow> {
    use amsim::cosim::CosimHandle;
    use vp::{
        monitor_firmware, run_de_platform, run_fast_platform, AnalogIntegration, PlatformConfig,
    };
    let wl = Workload::table1(sim_time);
    let config = PlatformConfig::new(monitor_firmware());
    let mut rows = Vec::new();
    for spec in paper_circuits() {
        let mut baseline = Duration::ZERO;
        type Runner<'a> = Box<dyn Fn() -> (vp::PlatformReport, Duration) + 'a>;
        let runners: Vec<(&'static str, Runner<'_>)> = vec![
            (
                "Verilog-AMS cosim",
                Box::new(|| {
                    let sim = Simulation::new(&spec.module)
                        .dt(wl.dt)
                        .output("V(out)")
                        .build()
                        .expect("lowers");
                    let handle = CosimHandle::spawn(sim, 1);
                    let start = Instant::now();
                    let report = run_de_platform(
                        AnalogIntegration::Cosim {
                            handle,
                            inputs: spec.inputs,
                            dt: wl.dt,
                        },
                        &config,
                        SimTime::from_seconds(sim_time),
                    );
                    (report, start.elapsed())
                }),
            ),
            (
                "SC-AMS/ELN",
                Box::new(|| {
                    let (net, sources, out) = &spec.eln;
                    let solver = Transient::new(net)
                        .dt(wl.dt)
                        .method(Method::BackwardEuler)
                        .build()
                        .expect("assembles");
                    let start = Instant::now();
                    let report = run_de_platform(
                        AnalogIntegration::Eln {
                            solver,
                            sources: sources.clone(),
                            output: *out,
                        },
                        &config,
                        SimTime::from_seconds(sim_time),
                    );
                    (report, start.elapsed())
                }),
            ),
            (
                "SC-AMS/TDF",
                Box::new(|| {
                    let model = abstracted_model(&spec, &wl);
                    let start = Instant::now();
                    let report = run_de_platform(
                        AnalogIntegration::Tdf(model),
                        &config,
                        SimTime::from_seconds(sim_time),
                    );
                    (report, start.elapsed())
                }),
            ),
            (
                "SC-DE",
                Box::new(|| {
                    let model = abstracted_model(&spec, &wl);
                    let start = Instant::now();
                    let report = run_de_platform(
                        AnalogIntegration::CompiledDe(model),
                        &config,
                        SimTime::from_seconds(sim_time),
                    );
                    (report, start.elapsed())
                }),
            ),
            (
                "C++",
                Box::new(|| {
                    let model = abstracted_model(&spec, &wl);
                    let start = Instant::now();
                    let report = run_fast_platform(model, &config, sim_time);
                    (report, start.elapsed())
                }),
            ),
        ];
        for (name, run) in runners {
            let (report, wall) = run();
            if baseline == Duration::ZERO {
                baseline = wall;
            }
            rows.push(PlatformRow {
                circuit: spec.label,
                level: name,
                wall,
                speedup: baseline.as_secs_f64() / wall.as_secs_f64(),
                instructions: report.instructions,
                uart_bytes: report.uart.len(),
            });
        }
    }
    rows
}

/// Formats Table III rows as an aligned text table.
pub fn format_platform_rows(title: &str, rows: &[PlatformRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<8} {:<20} {:>12} {:>9} {:>13} {:>6}",
        "Circuit", "Integration", "Wall [s]", "Speed-up", "Instructions", "UART"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<20} {:>12.4} {:>8.1}x {:>13} {:>6}",
            r.circuit,
            r.level,
            r.wall.as_secs_f64(),
            r.speedup,
            r.instructions,
            r.uart_bytes
        );
    }
    out
}

/// Formats rows as an aligned text table.
pub fn format_rows(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:>7} {:>12} {:>12} {:>9}",
        "Circuit", "Level", "Method", "Wall [s]", "NRMSE", "Speed-up"
    );
    for r in rows {
        let nrmse = r
            .nrmse
            .map(|e| format!("{e:.2e}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>7} {:>12.4} {:>12} {:>8.1}x",
            r.circuit,
            r.level.label(),
            r.level.method(),
            r.wall.as_secs_f64(),
            nrmse,
            r.speedup
        );
    }
    out
}

/// Minimal stand-in for a statistical benchmark harness (criterion is
/// not vendored): warms `f` up briefly, then times batches until ~50 ms
/// of samples accumulate and prints the mean per-iteration cost.
///
/// Used by the plain-`main` programs under `benches/`.
pub fn microbench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    let warm = Instant::now();
    let mut batch = 0u64;
    while batch < 5 || warm.elapsed() < Duration::from_millis(10) {
        std::hint::black_box(f());
        batch += 1;
    }
    let mut total = Duration::ZERO;
    let mut count = 0u64;
    while total < Duration::from_millis(50) {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        total += start.elapsed();
        count += batch;
    }
    let per = total.as_secs_f64() / count as f64;
    println!(
        "{group}/{name:<34} {:>12.0} ns/iter ({count} iters)",
        per * 1e9
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_circuits_build_at_every_level() {
        let wl = Workload::table1(20e-6); // 400 steps — smoke test
        for spec in paper_circuits() {
            for level in [
                Level::VamsRef,
                Level::Eln,
                Level::Tdf,
                Level::De,
                Level::Cpp,
            ] {
                let wall = run_isolated(&spec, level, &wl);
                assert!(wall.as_nanos() > 0, "{} {:?}", spec.label, level);
            }
        }
    }

    #[test]
    fn accuracy_is_paper_grade() {
        // NRMSE of the abstracted models vs the conservative reference at
        // the same Δt: the paper reports 1e-5..1e-9; both backward-Euler
        // implementations agree far more tightly here because the
        // discretization is identical.
        // A faster stimulus keeps several transitions inside the window
        // (NRMSE normalizes by the reference range, which must span the
        // actual signal swing).
        let wl = Workload {
            dt: 50e-9,
            sim_time: 1e-3,
            stim: SquareWave {
                period: 20e-6,
                high: 1.0,
                low: 0.0,
            },
        };
        for spec in paper_circuits() {
            let steps = 2000;
            let reference = reference_waveform(&spec, &wl, steps);
            let abstracted = abstracted_waveform(&spec, &wl, steps);
            let e = linalg::nrmse(&abstracted, &reference);
            assert!(e < 1e-3, "{}: NRMSE {e}", spec.label);
            let eln = eln_waveform(&spec, &wl, steps);
            let e2 = linalg::nrmse(&eln, &reference);
            assert!(e2 < 1e-3, "{} ELN: NRMSE {e2}", spec.label);
        }
    }

    #[test]
    fn cpp_is_fastest_and_reference_is_slowest() {
        let wl = Workload::table1(100e-6); // 2000 steps
        let spec = &paper_circuits()[1]; // RC1
        let vams = run_isolated(spec, Level::VamsRef, &wl);
        let cpp = run_isolated(spec, Level::Cpp, &wl);
        let de = run_isolated(spec, Level::De, &wl);
        assert!(
            vams > cpp * 5,
            "reference ({vams:?}) must dwarf the compiled model ({cpp:?})"
        );
        assert!(vams > de, "reference slower than DE integration");
    }

    #[test]
    fn row_formatting_is_stable() {
        let rows = vec![Row {
            circuit: "RC1",
            level: Level::Cpp,
            wall: Duration::from_millis(40),
            nrmse: Some(4.6e-7),
            speedup: 12648.0,
        }];
        let text = format_rows("TABLE I", &rows);
        assert!(text.contains("TABLE I"));
        assert!(text.contains("RC1"));
        assert!(text.contains("C++"));
        assert!(text.contains("4.60e-7"));
        assert!(text.contains("12648.0x"));
    }
}
