//! CI smoke check for checkpoint/fork sweep execution — the headline
//! benchmark of the scenario-tree work.
//!
//! Sweeps RC20 × 64 scenarios that share the first 75% of their
//! stimulus (300 of 400 steps) twice at the same worker count and lane
//! width: once as a flat batched sweep (`run_ams_sweep_batched`, every
//! lane re-simulates the shared prefix) and once as a scenario tree
//! (`run_ams_sweep_tree`, the prefix is simulated once and the 64 tails
//! fork from a snapshot). Asserts that
//!
//! * every forked waveform is **bit-identical** to its flat twin over
//!   all 400 samples (forking is a scheduling choice, not a numerical
//!   one);
//! * the tree counters are exact: 65 nodes, 1 fork,
//!   `sweep.tree.prefix_steps_saved = 300 · 63`, one snapshot taken and
//!   64 restores;
//! * the tree sweep is at least `MIN_SPEEDUP`× faster at equal workers
//!   (the whole point of forking: 63 redundant prefix simulations
//!   disappear).
//!
//! Writes the merged tree report as `BENCH_fork_smoke.json`. Exits
//! nonzero on any violation.

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant, Stimulus};
use obs::Obs;
use std::time::Instant;
use sweep::{
    run_ams_sweep_batched, run_ams_sweep_tree, AmsScenario, ScenarioBudget, ScenarioSegment,
    ScenarioTree, SweepEngine, TreeScenario,
};

const SCENARIOS: usize = 64;
const WORKERS: usize = 4;
const LANE_WIDTH: usize = 16;
const DT: f64 = 1e-6;
const PREFIX_STEPS: usize = 300;
const TAIL_STEPS: usize = 100;
const MIN_SPEEDUP: f64 = 2.0;

/// Stitches two stimuli at `t0`: the flat-sweep equivalent of a tree
/// path whose segment boundary sits at absolute time `t0`.
struct SwitchAt {
    t0: f64,
    before: Box<dyn Stimulus + Send + Sync>,
    after: Box<dyn Stimulus + Send + Sync>,
}

impl Stimulus for SwitchAt {
    fn value(&self, t: f64) -> f64 {
        if t < self.t0 {
            self.before.value(t)
        } else {
            self.after.value(t)
        }
    }
}

fn prefix_stim() -> PiecewiseConstant {
    PiecewiseConstant::seeded(7, 5, 5e-5, 0.0, 1.0)
}

fn tail_stim(i: usize) -> PiecewiseConstant {
    PiecewiseConstant::seeded(i as u64 + 100, 5, 5e-5, 0.0, 1.0)
}

fn flat_scenarios() -> Vec<AmsScenario> {
    (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("rc20/tail{i}"),
            stim: Box::new(SwitchAt {
                t0: PREFIX_STEPS as f64 * DT,
                before: Box::new(prefix_stim()),
                after: Box::new(tail_stim(i)),
            }),
            steps: PREFIX_STEPS + TAIL_STEPS,
            newton_tol: None,
            step_control: None,
        })
        .collect()
}

fn tree() -> ScenarioTree {
    ScenarioTree {
        roots: vec![TreeScenario {
            newton_tol: None,
            step_control: None,
            segment: ScenarioSegment {
                name: "rc20/prefix".into(),
                stim: Box::new(prefix_stim()),
                steps: PREFIX_STEPS,
                children: (0..SCENARIOS)
                    .map(|i| ScenarioSegment {
                        name: format!("rc20/tail{i}"),
                        stim: Box::new(tail_stim(i)),
                        steps: TAIL_STEPS,
                        children: Vec::new(),
                    })
                    .collect(),
            },
        }],
    }
}

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(20)).expect("RC20 parses");
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .expect("RC20 compiles");
    let engine = SweepEngine::new().workers(WORKERS);
    let budget = ScenarioBudget::unlimited();

    // Warm-up (page in the model, stabilize frequencies), then measure.
    run_ams_sweep_batched(
        &engine,
        &model,
        &flat_scenarios()[..WORKERS],
        LANE_WIDTH,
        &budget,
    )
    .expect("warm-up runs");

    let t0 = Instant::now();
    let flat = run_ams_sweep_batched(&engine, &model, &flat_scenarios(), LANE_WIDTH, &budget)
        .expect("flat batched sweep runs");
    let flat_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let forked =
        run_ams_sweep_tree(&engine, &model, &tree(), LANE_WIDTH, &budget).expect("tree sweep runs");
    let forked_secs = t0.elapsed().as_secs_f64();
    let speedup = flat_secs / forked_secs;

    let compile_obs = Obs::recording();
    compile_obs.add("bench.scenarios", SCENARIOS as u64);
    let mut report = compile_obs.report().expect("recording collector reports");
    report.merge(&forked.report);
    report
        .write_json("BENCH_fork_smoke.json")
        .expect("BENCH_fork_smoke.json is writable");

    let mut failures = Vec::new();
    // Bit-identity: every forked waveform equals its flat twin from t=0.
    let mut mismatches = 0usize;
    for (i, (f, t)) in flat.results.iter().zip(&forked.results).enumerate() {
        let (f, t) = match (f.ok(), t.ok()) {
            (Some(f), Some(t)) => (f, t),
            _ => {
                failures.push(format!("scenario {i} did not complete in both sweeps"));
                continue;
            }
        };
        if f.name != t.name {
            failures.push(format!("scenario {i}: name {} vs {}", f.name, t.name));
        }
        if f.waveform.len() != t.waveform.len() {
            failures.push(format!("scenario {i}: waveform lengths differ"));
            continue;
        }
        mismatches += f
            .waveform
            .iter()
            .zip(&t.waveform)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
    }
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} waveform samples differ between flat and forked sweeps \
             (bit-identity is a design requirement, not a tolerance)"
        ));
    }
    let want = [
        ("sweep.scenarios.ok", SCENARIOS as u64),
        ("sweep.tree.nodes", SCENARIOS as u64 + 1),
        ("sweep.tree.forks", 1),
        (
            "sweep.tree.prefix_steps_saved",
            (PREFIX_STEPS * (SCENARIOS - 1)) as u64,
        ),
        ("amsim.snapshot.taken", 1),
        ("amsim.snapshot.restored", SCENARIOS as u64),
    ];
    for (c, v) in want {
        if forked.report.counter(c) != v {
            failures.push(format!(
                "counter `{c}` is {}, want {v}",
                forked.report.counter(c)
            ));
        }
    }
    // RC20 is linear: every lane (root and forked) stays on the shared
    // zero-state factors, so forking must not introduce a refactor.
    if forked.report.counter("amsim.lu.factorizations") != 0 {
        failures.push(format!(
            "counter `amsim.lu.factorizations` is {}, want 0 (shared-factor path lost)",
            forked.report.counter("amsim.lu.factorizations")
        ));
    }
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "tree sweep speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor \
             (flat {flat_secs:.3}s vs forked {forked_secs:.3}s at {WORKERS} workers)"
        ));
    }

    println!(
        "fork_smoke: RC20 x {SCENARIOS} scenarios, {}/{} shared prefix steps, \
         {WORKERS} workers, lane width {LANE_WIDTH}",
        PREFIX_STEPS,
        PREFIX_STEPS + TAIL_STEPS
    );
    println!("  flat    {flat_secs:>8.3} s");
    println!("  forked  {forked_secs:>8.3} s  ({speedup:.2}x)");
    println!(
        "  prefix steps saved: {}",
        forked.report.counter("sweep.tree.prefix_steps_saved")
    );

    if failures.is_empty() {
        println!("fork_smoke: OK");
    } else {
        for f in &failures {
            eprintln!("fork_smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
