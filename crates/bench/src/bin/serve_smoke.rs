//! CI smoke check for the sweep-as-a-service daemon.
//!
//! Boots an in-process server, submits a 64-scenario RC1 job over a real
//! socket, and asserts the service contract end to end: the streamed
//! records equal a local batch run bit for bit, resubmitting the same
//! module is a model-cache hit, and a submission past the forced
//! one-job cap bounces with `429` + `Retry-After`. Writes the final
//! server report as `BENCH_serve_smoke.json` and exits nonzero on any
//! violation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use serve::json::{self, Json, JsonBuf};
use serve::{ServeConfig, Server};
use sweep::{run_ams_sweep_batched, AmsScenario, ScenarioBudget, SweepEngine};

const SCENARIOS: usize = 64;
const STEPS: usize = 200;
const LANE_WIDTH: usize = 4;

fn main() {
    let server = Server::start(ServeConfig {
        workers: 4,
        lane_width: LANE_WIDTH,
        max_jobs: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut failures = Vec::new();

    // --- Streamed job vs local batch run -------------------------------
    let module_src = rc_ladder(1);
    let body = job_body(&module_src);
    let first = post_job(addr, &body);
    if first.0 != 200 {
        failures.push(format!("first job answered {} not 200", first.0));
    }
    let records: Vec<Json> = first
        .1
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| json::parse(l).expect("stream record parses"))
        .collect();

    let module = vams_parser::parse_module(&module_src).expect("RC1 parses");
    let model: Arc<_> = amsim::Simulation::new(&module)
        .dt(1e-6)
        .output("V(out)")
        .compile()
        .expect("RC1 compiles");
    let scenarios: Vec<AmsScenario> = (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("s{i}"),
            stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 5, 5e-5, 0.0, 1.0)),
            steps: STEPS,
            newton_tol: None,
            step_control: None,
        })
        .collect();
    let outcome = run_ams_sweep_batched(
        &SweepEngine::new().workers(4),
        &model,
        &scenarios,
        LANE_WIDTH,
        &ScenarioBudget::unlimited(),
    )
    .expect("local sweep runs");

    if records.len() != SCENARIOS + 3 {
        failures.push(format!(
            "expected {} records (accepted + scenarios + report + done), got {}",
            SCENARIOS + 3,
            records.len()
        ));
    } else {
        if records[0].get("cache").and_then(Json::as_str) != Some("miss") {
            failures.push("first submission must be a cache miss".into());
        }
        for (i, rec) in records[1..=SCENARIOS].iter().enumerate() {
            let local = outcome.results[i].ok().expect("local scenario healthy");
            if rec.get("index").and_then(Json::as_u64) != Some(i as u64) {
                failures.push(format!("record {i} carries the wrong index"));
                break;
            }
            let wave = rec.get("waveform").and_then(Json::as_array).unwrap_or(&[]);
            let identical = wave.len() == local.waveform.len()
                && wave
                    .iter()
                    .zip(&local.waveform)
                    .all(|(s, l)| s.as_f64().map(f64::to_bits) == Some(l.to_bits()));
            if !identical {
                failures.push(format!(
                    "scenario {i}: streamed waveform diverged from the local batch run"
                ));
                break;
            }
        }
        let done = records.last().unwrap();
        if done.get("ok").and_then(Json::as_u64) != Some(SCENARIOS as u64) {
            failures.push(format!("job.done lacks {SCENARIOS} ok scenarios"));
        }
    }

    // --- Cache hit on resubmit -----------------------------------------
    let second = post_job(addr, &body);
    let second_first = second
        .1
        .lines()
        .next()
        .map(|l| json::parse(l).expect("record parses"));
    if second.0 != 200
        || second_first
            .as_ref()
            .and_then(|r| r.get("cache"))
            .and_then(Json::as_str)
            != Some("hit")
    {
        failures.push("resubmitting the identical job must be a model-cache hit".into());
    }

    // --- One 429 under the forced single-job cap -----------------------
    // Hold the only slot with a long-running job; probe once the stats
    // endpoint confirms the blocker is in the slot (nothing else is
    // submitting, so acceptance #3 can only be the blocker).
    let slow_body = job_body_slow(&module_src);
    let blocker = std::thread::spawn(move || post_job(addr, &slow_body));
    let deadline = Instant::now() + Duration::from_secs(30);
    while accepted_jobs(addr) < 3 {
        if Instant::now() >= deadline {
            failures.push("blocking job was never accepted".into());
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, body_text, retry_after) = post_raw(addr, &body);
    if status != 429 {
        failures.push(format!(
            "expected 429 under the forced one-job cap, got {status}"
        ));
    } else {
        if retry_after.is_none() {
            failures.push("429 response is missing Retry-After".into());
        }
        if !body_text.contains("job.rejected") {
            failures.push("429 body lacks the typed job.rejected record".into());
        }
    }
    let blocker = blocker.join().expect("blocker thread");
    if blocker.0 != 200 {
        failures.push(format!("blocking job answered {} not 200", blocker.0));
    }

    // --- Report + conservation -----------------------------------------
    let report = server.shutdown();
    report
        .write_json("BENCH_serve_smoke.json")
        .expect("BENCH_serve_smoke.json is writable");
    if report.counter("serve.jobs.completed") != report.counter("serve.jobs.accepted") {
        failures.push(format!(
            "accepted {} != completed {}",
            report.counter("serve.jobs.accepted"),
            report.counter("serve.jobs.completed")
        ));
    }
    if report.counter("serve.jobs.rejected") == 0 {
        failures.push("counter serve.jobs.rejected stayed 0".into());
    }
    if report.counter("serve.cache.hits") == 0 {
        failures.push("counter serve.cache.hits stayed 0 (resubmit recompiled?)".into());
    }
    if report.counter("serve.cache.misses") != 1 {
        failures.push(format!(
            "counter serve.cache.misses is {}, want 1 (compile-once violated)",
            report.counter("serve.cache.misses")
        ));
    }

    if !failures.is_empty() {
        eprintln!("serve_smoke FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "serve_smoke OK: {SCENARIOS}-scenario stream identical to the batch run, \
         cache hit on resubmit, 429 under cap; {} jobs, {} stream records",
        report.counter("serve.jobs.accepted"),
        report.counter("serve.stream.records"),
    );
}

fn job_body(module: &str) -> String {
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", module)
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)")
        .u64_field("lane_width", LANE_WIDTH as u64);
    b.begin_arr("scenarios");
    for i in 0..SCENARIOS as u64 {
        b.begin_obj()
            .str_field("name", &format!("s{i}"))
            .u64_field("steps", STEPS as u64)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "pwc")
            .u64_field("seed", i + 1)
            .u64_field("segments", 5)
            .f64_field("hold", 5e-5)
            .f64_field("lo", 0.0)
            .f64_field("hi", 1.0)
            .end_obj();
        b.end_obj();
    }
    b.end_arr();
    b.end_obj();
    b.into_string()
}

/// A job long enough to hold the single slot while the probe submits.
fn job_body_slow(module: &str) -> String {
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", module)
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)");
    b.begin_arr("scenarios");
    for i in 0..128u64 {
        b.begin_obj()
            .str_field("name", &format!("slow{i}"))
            .u64_field("steps", 5000)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "const")
            .f64_field("value", 0.5)
            .end_obj();
        b.end_obj();
    }
    b.end_arr();
    b.end_obj();
    b.into_string()
}

/// Reads `serve.jobs.accepted` off the stats endpoint.
fn accepted_jobs(addr: SocketAddr) -> u64 {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        s,
        "GET /v1/stats HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read stats");
    let text = String::from_utf8_lossy(&raw);
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    json::parse(body)
        .ok()
        .and_then(|v| {
            v.get("counters")
                .and_then(|c| c.get("serve.jobs.accepted"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0)
}

/// POSTs a job and returns `(status, chunk-decoded body)`.
fn post_job(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, body, _) = post_raw(addr, body);
    (status, body)
}

fn post_raw(addr: SocketAddr, body: &str) -> (u16, String, Option<String>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    write!(
        s,
        "POST /v1/jobs HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let retry_after = head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
        })
        .map(|(_, v)| v.trim().to_string());
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("transfer-encoding") && l.contains("chunked"));
    let mut rest = &raw[head_end + 4..];
    let body = if chunked {
        let mut out = Vec::new();
        loop {
            let line_end = rest
                .windows(2)
                .position(|w| w == b"\r\n")
                .expect("chunk size");
            let size = usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).unwrap(), 16)
                .expect("hex chunk size");
            rest = &rest[line_end + 2..];
            if size == 0 {
                break;
            }
            out.extend_from_slice(&rest[..size]);
            rest = &rest[size + 2..];
        }
        out
    } else {
        rest.to_vec()
    };
    (
        status,
        String::from_utf8(body).expect("UTF-8 body"),
        retry_after,
    )
}
