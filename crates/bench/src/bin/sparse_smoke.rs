//! CI smoke check for the sparse factorization backend — the headline
//! benchmark of the `Factorization` seam.
//!
//! Runs the paper-scale RC500 ladder (2500 unknowns) through a 0.5 ms
//! transient at the nominal 1 µs step on both backends and asserts that
//!
//! * `SolverKind::Auto` resolves to Sparse for RC500 and to Dense for
//!   the small 2IN benchmark (the density/size heuristic);
//! * the sparse transient is at least `MIN_SPEEDUP`× faster than the
//!   dense one (the dense per-step cost is an O(n²) triangular solve;
//!   sparse is O(nnz + fill), near-linear on a ladder);
//! * the two waveforms agree to NRMSE ≤ `MAX_NRMSE` — the backend is an
//!   implementation detail, not a model change;
//! * solver-behavior counters (`amsim.steps`, `amsim.newton_iterations`,
//!   `amsim.lu.factorizations`) are conserved across backends;
//! * the `linalg.sparse.{analyze,refactor,fill}` counters are live: one
//!   frozen symbolic analysis per compile with nonzero fill, and (on a
//!   nonlinear circuit that rebuilds its Jacobian) one pattern-reusing
//!   refactor per factorization;
//! * sparse per-step cost scales near-linearly: RC500 costs at most
//!   `MAX_STEP_RATIO`× RC20 per step, against a 25× size ratio.
//!
//! Writes the merged report as `BENCH_sparse_smoke.json`. Exits nonzero on any
//! violation.

use amsim::{Simulation, SolverKind, StepControl};
use amsvp_core::circuits::{diode_clamp, rc_ladder, two_inputs, PiecewiseConstant};
use obs::{Obs, Report};
use std::time::Instant;

const STEPS: usize = 500;
const DT: f64 = 1e-6;
const MIN_SPEEDUP: f64 = 20.0;
const MAX_NRMSE: f64 = 1e-12;
/// RC500/RC20 sparse per-step ceiling. The size ratio is 25×; the bound
/// leaves ~3× for cache-hierarchy drift in the residual/Jacobian
/// bytecode evaluation, which dominates the sparse per-step cost.
const MAX_STEP_RATIO: f64 = 80.0;

struct TransientRun {
    wave: Vec<f64>,
    secs: f64,
    report: Report,
}

/// Compile `source` with a forced backend and run the transient,
/// capturing compile- and run-time counters in one report.
fn transient(
    source: &str,
    kind: SolverKind,
    output: &str,
    steps: usize,
    dt: f64,
    ctrl: Option<StepControl>,
) -> TransientRun {
    let obs = Obs::recording();
    let module = vams_parser::parse_module(source).expect("benchmark circuit parses");
    let model = Simulation::new(&module)
        .dt(dt)
        .output(output)
        .solver(kind)
        .collector(obs.clone())
        .compile()
        .expect("benchmark circuit compiles");
    assert_eq!(model.solver_kind(), kind, "forced backend not honored");
    let stim = PiecewiseConstant::seeded(1, 8, 100.0 * dt, 0.0, 1.0);
    let mut inst = model
        .instance_builder()
        .collector(obs.clone())
        .step_control(ctrl)
        .build()
        .expect("instance builds");
    let t0 = Instant::now();
    let wave: Vec<f64> = (0..steps)
        .map(|k| {
            inst.try_step(&[stim.value(k as f64 * dt)])
                .expect("step succeeds");
            inst.output(0)
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    inst.flush_counters();
    TransientRun {
        wave,
        secs,
        report: obs.report().expect("recording collector reports"),
    }
}

/// NRMSE with absolute-RMSE fallback for flat signals, matching the
/// differential test battery.
fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    let mut sum_sq = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (&x, &y) in a.iter().zip(b) {
        sum_sq += (x - y) * (x - y);
        lo = lo.min(x.min(y));
        hi = hi.max(x.max(y));
    }
    let rmse = (sum_sq / a.len() as f64).sqrt();
    let range = hi - lo;
    if range > 1e-12 {
        rmse / range
    } else {
        rmse
    }
}

fn resolved_kind(source: &str) -> SolverKind {
    let module = vams_parser::parse_module(source).expect("circuit parses");
    Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .expect("circuit compiles")
        .solver_kind()
}

fn main() {
    let mut failures = Vec::new();

    // Auto-selection heuristic at both ends of the size spectrum.
    let rc500_src = rc_ladder(500);
    let auto_rc500 = resolved_kind(&rc500_src);
    if auto_rc500 != SolverKind::Sparse {
        failures.push(format!(
            "Auto resolved RC500 to {auto_rc500:?}, want Sparse"
        ));
    }
    let auto_2in = resolved_kind(&two_inputs());
    if auto_2in != SolverKind::Dense {
        failures.push(format!("Auto resolved 2IN to {auto_2in:?}, want Dense"));
    }

    // RC500 transient, both backends. `V(n3)` near the driven end
    // responds within the 0.5 ms window, so the NRMSE is not vacuous.
    let sparse = transient(&rc500_src, SolverKind::Sparse, "V(n3)", STEPS, DT, None);
    let dense = transient(&rc500_src, SolverKind::Dense, "V(n3)", STEPS, DT, None);
    let speedup = dense.secs / sparse.secs;
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "RC500 sparse speedup {speedup:.1}x below the {MIN_SPEEDUP}x floor \
             (dense {:.3}s vs sparse {:.3}s over {STEPS} steps)",
            dense.secs, sparse.secs
        ));
    }
    let err = nrmse(&dense.wave, &sparse.wave);
    if err > MAX_NRMSE {
        failures.push(format!(
            "RC500 dense vs sparse NRMSE {err:.3e} exceeds {MAX_NRMSE:.0e}"
        ));
    }
    for c in [
        "amsim.steps",
        "amsim.newton_iterations",
        "amsim.lu.factorizations",
    ] {
        if dense.report.counter(c) != sparse.report.counter(c) {
            failures.push(format!(
                "counter `{c}` not conserved: dense {} vs sparse {}",
                dense.report.counter(c),
                sparse.report.counter(c)
            ));
        }
    }
    if sparse.report.counter("linalg.sparse.analyze") != 1 {
        failures.push(format!(
            "counter `linalg.sparse.analyze` is {}, want exactly 1 (one frozen \
             symbolic analysis per compile)",
            sparse.report.counter("linalg.sparse.analyze")
        ));
    }
    if sparse.report.counter("linalg.sparse.fill") == 0 {
        failures.push("counter `linalg.sparse.fill` is 0; factor storage unaccounted".into());
    }
    if dense.report.counter("linalg.sparse.analyze") != 0 {
        failures.push("dense backend reported `linalg.sparse.analyze`".into());
    }

    // Refactor liveness: the stiff diode clamp under adaptive stepping
    // changes dt on retries, so the run must drive nonzero pattern-reusing
    // refactorizations, bounded by the factorization attempts (failed
    // attempts — NaN pivots at aggressive dt, answered by retry — count
    // as attempts, not as completed refactors; the linear-ladder sweep
    // tests pin the exact attempt/refactor identity).
    let dio = transient(
        &diode_clamp(),
        SolverKind::Sparse,
        "V(out)",
        60,
        1e-4,
        Some(StepControl::new(1e-9).max_retries(20)),
    );
    let refactors = dio.report.counter("linalg.sparse.refactor");
    let factorizations = dio.report.counter("amsim.lu.factorizations");
    if refactors == 0 || refactors > factorizations {
        failures.push(format!(
            "diode clamp refactor counter {refactors} (want nonzero and at most \
             amsim.lu.factorizations {factorizations})"
        ));
    }

    // Near-linear step-cost scaling: RC20 on the same forced-sparse path.
    let rc20 = transient(&rc_ladder(20), SolverKind::Sparse, "V(n3)", STEPS, DT, None);
    let per_step_ratio = sparse.secs / rc20.secs;
    if per_step_ratio > MAX_STEP_RATIO {
        failures.push(format!(
            "RC500/RC20 sparse per-step ratio {per_step_ratio:.1}x exceeds \
             {MAX_STEP_RATIO}x (size ratio is 25x; step cost must stay near-linear)"
        ));
    }

    let bench_obs = Obs::recording();
    bench_obs.add("bench.sparse.steps", STEPS as u64);
    bench_obs.add("bench.sparse.speedup_x100", (speedup * 100.0) as u64);
    bench_obs.add(
        "bench.sparse.step_ratio_x100",
        (per_step_ratio * 100.0) as u64,
    );
    let mut report = bench_obs.report().expect("recording collector reports");
    report.merge(&sparse.report);
    report.merge(&dio.report);
    report
        .write_json("BENCH_sparse_smoke.json")
        .expect("BENCH_sparse_smoke.json is writable");

    println!("sparse_smoke: RC500 transient, {STEPS} steps at dt {DT:.0e}");
    println!("  dense    {:>8.3} s", dense.secs);
    println!("  sparse   {:>8.3} s  ({speedup:.1}x)", sparse.secs);
    println!("  RC500/RC20 per-step ratio {per_step_ratio:.1}x (size ratio 25x)");
    println!(
        "  sparse counters: analyze {} refactor {} fill {}",
        sparse.report.counter("linalg.sparse.analyze"),
        dio.report.counter("linalg.sparse.refactor"),
        sparse.report.counter("linalg.sparse.fill"),
    );

    if failures.is_empty() {
        println!("sparse_smoke: OK");
    } else {
        for f in &failures {
            eprintln!("sparse_smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
