//! CI smoke check for fault-isolated sweeps.
//!
//! Runs 16 diode-clamp scenarios on a 4-worker pool with two injected
//! faults — a panicking stimulus and a fixed-dt non-convergent run —
//! and asserts the healthy 14 complete, the faults come back as typed
//! records in their slots, the fault counters tally, and no scenario is
//! lost or duplicated. Writes the merged report as `BENCH_robustness_smoke.json` and
//! exits nonzero on any violation.

use amsim::StepControl;
use amsvp_core::circuits::{diode_clamp, PiecewiseConstant, SquareWave, Stimulus};
use sweep::{run_ams_sweep, AmsScenario, ScenarioBudget, ScenarioOutcome, SweepEngine};

const SCENARIOS: usize = 16;
const WORKERS: usize = 4;
const STEPS: usize = 20;
const DT: f64 = 1e-4;
const PANIC_AT: usize = 5;
const DIVERGE_AT: usize = 11;

/// Stimulus that panics once `t` reaches its deadline — an injected
/// user-code fault the pool must contain.
struct PanicAt(f64);

impl Stimulus for PanicAt {
    fn value(&self, t: f64) -> f64 {
        assert!(t < self.0, "injected stimulus failure at t = {t}");
        0.8
    }
}

fn scenarios() -> Vec<AmsScenario> {
    (0..SCENARIOS)
        .map(|i| {
            if i == PANIC_AT {
                AmsScenario {
                    name: format!("clamp/{i}-panic"),
                    stim: Box::new(PanicAt(5.0 * DT)),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: Some(StepControl::new(1e-9).max_retries(20)),
                }
            } else if i == DIVERGE_AT {
                AmsScenario {
                    name: format!("clamp/{i}-diverge"),
                    stim: Box::new(SquareWave {
                        period: 10.0 * DT,
                        high: 1.0,
                        low: 0.8,
                    }),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: None,
                }
            } else {
                AmsScenario {
                    name: format!("clamp/{i}"),
                    stim: Box::new(PiecewiseConstant::seeded(
                        i as u64 + 1,
                        4,
                        5.0 * DT,
                        0.0,
                        0.8,
                    )),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: Some(StepControl::new(1e-9).max_retries(20)),
                }
            }
        })
        .collect()
}

fn main() {
    let module = vams_parser::parse_module(&diode_clamp()).expect("clamp parses");
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .expect("clamp compiles");

    // The injected panic is expected; keep its default-hook backtrace
    // out of the CI log. Workers catch it either way.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = run_ams_sweep(
        &SweepEngine::new().workers(WORKERS),
        &model,
        &scenarios(),
        &ScenarioBudget::unlimited(),
    )
    .expect("sweep runs");
    drop(std::panic::take_hook());

    let report = &outcome.report;
    report
        .write_json("BENCH_robustness_smoke.json")
        .expect("BENCH_robustness_smoke.json is writable");

    let mut failures = Vec::new();
    if outcome.results.len() != SCENARIOS {
        failures.push(format!(
            "expected {SCENARIOS} results, got {}",
            outcome.results.len()
        ));
    }
    match &outcome.results[PANIC_AT] {
        ScenarioOutcome::Panicked(msg) if msg.contains("injected") => {}
        other => failures.push(format!(
            "slot {PANIC_AT}: want Panicked with payload, got {other:?}"
        )),
    }
    match &outcome.results[DIVERGE_AT] {
        ScenarioOutcome::Failed {
            error: amsim::AmsError::NoConvergence { dt, .. },
            ..
        } if *dt == DT => {}
        other => failures.push(format!(
            "slot {DIVERGE_AT}: want Failed(NoConvergence) at dt = {DT}, got {other:?}"
        )),
    }
    let healthy = outcome.results.iter().filter(|r| r.is_ok()).count();
    if healthy != SCENARIOS - 2 {
        failures.push(format!(
            "expected {} healthy outcomes, got {healthy}",
            SCENARIOS - 2
        ));
    }
    for (key, want) in [
        ("sweep.scenarios.ok", (SCENARIOS - 2) as u64),
        ("sweep.scenarios.failed", 1),
        ("sweep.scenarios.panicked", 1),
        ("sweep.scenarios.budget", 0),
        ("sweep.scenarios", SCENARIOS as u64),
    ] {
        if report.counter(key) != want {
            failures.push(format!(
                "counter `{key}` is {}, want {want}",
                report.counter(key)
            ));
        }
    }
    let per_worker: u64 = (0..WORKERS)
        .map(|w| report.counter(&format!("sweep.worker.{w}.scenarios")))
        .sum();
    if per_worker != SCENARIOS as u64 {
        failures.push(format!(
            "per-worker scenario counts sum to {per_worker}, want {SCENARIOS} \
             (scenarios lost or duplicated)"
        ));
    }
    if report.counter("amsim.step.rejected") == 0 {
        failures.push("adaptive scenarios never exercised retry/backoff".into());
    }

    if !failures.is_empty() {
        eprintln!("robustness_smoke FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "robustness_smoke OK: {healthy}/{SCENARIOS} healthy on {WORKERS} workers \
         in {:.3} s, 1 panic contained, 1 typed solver failure, {} step rejections",
        outcome.wall,
        report.counter("amsim.step.rejected"),
    );
}
