//! CI smoke check for fleet execution — the headline benchmark of the
//! fleet work: N full smart-system instances (CPU + firmware + UART +
//! analog bridge each) in one process, over **one** shared compiled
//! model and **one** shared firmware image.
//!
//! Runs an RC1 fleet at 100 and 1000 devices and asserts that
//!
//! * every device completes (`ok + failed + panicked + budget == N`,
//!   all of them `ok`);
//! * the 100-device fleet at 4 workers is **bit-identical** to the same
//!   fleet at 1 worker — waveform bits, UART bytes, instruction counts;
//! * the analog model really is compiled once: the merged report
//!   (compile collector included) carries `amsim.jacobian.builds == 1`
//!   — the model count — with zero rebuilds and zero refactorizations
//!   across all 1000 devices;
//! * per-worker shard counters conserve the device count.
//!
//! Prints devices/sec at both fleet sizes and writes the merged
//! 1000-device report as `BENCH_fleet_smoke.json`. Exits nonzero on any
//! violation.

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use obs::Obs;
use std::time::Instant;
use vp::{monitor_firmware, run_fleet, DeviceScenario, Firmware, FleetConfig, FleetOutcome};

const SMALL: usize = 100;
const LARGE: usize = 1000;
const WORKERS: usize = 4;
const LANE_WIDTH: usize = 8;
const STEPS: usize = 200;
const DT: f64 = 1e-6;

fn devices(n: usize) -> Vec<DeviceScenario> {
    (0..n)
        .map(|i| {
            DeviceScenario::new(
                format!("dev{i}"),
                PiecewiseConstant::seeded(i as u64 + 1, 5, 12.0 * DT, 0.0, 1.0),
                STEPS,
            )
        })
        .collect()
}

/// Per-device comparable payload for the bit-identity check.
fn payload(out: &FleetOutcome) -> Vec<(Vec<u64>, Vec<u8>, u64)> {
    out.devices
        .iter()
        .filter_map(|r| r.ok())
        .map(|run| {
            (
                run.waveform.iter().map(|v| v.to_bits()).collect(),
                run.report.uart.clone(),
                run.report.instructions,
            )
        })
        .collect()
}

fn main() {
    let compile_obs = Obs::recording();
    let module = vams_parser::parse_module(&rc_ladder(1)).expect("RC1 parses");
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .collector(compile_obs.clone())
        .compile()
        .expect("RC1 compiles");
    let firmware = Firmware::from(monitor_firmware());
    let config = FleetConfig::new(firmware)
        .workers(WORKERS)
        .lane_width(LANE_WIDTH);

    // Warm-up (page in the model, stabilize frequencies), then measure.
    run_fleet(&model, &config, &devices(WORKERS * LANE_WIDTH)).expect("warm-up runs");

    let t0 = Instant::now();
    let small = run_fleet(&model, &config, &devices(SMALL)).expect("small fleet runs");
    let small_secs = t0.elapsed().as_secs_f64();
    let small_rate = SMALL as f64 / small_secs;

    let t0 = Instant::now();
    let large = run_fleet(&model, &config, &devices(LARGE)).expect("large fleet runs");
    let large_secs = t0.elapsed().as_secs_f64();
    let large_rate = LARGE as f64 / large_secs;

    // The determinism reference: same 100 devices on a single worker.
    let single = run_fleet(&model, &config.clone().workers(1), &devices(SMALL))
        .expect("single-worker fleet runs");

    let mut report = compile_obs.report().expect("recording collector reports");
    report.merge(&large.report);
    let bench_obs = Obs::recording();
    bench_obs.add("bench.fleet.devices.small", SMALL as u64);
    bench_obs.add("bench.fleet.devices.large", LARGE as u64);
    bench_obs.add("bench.fleet.small.devices_per_sec", small_rate as u64);
    bench_obs.add("bench.fleet.large.devices_per_sec", large_rate as u64);
    report.merge(&bench_obs.report().expect("recording collector reports"));
    report
        .write_json("BENCH_fleet_smoke.json")
        .expect("BENCH_fleet_smoke.json is writable");

    let mut failures = Vec::new();
    for (label, out, n) in [("small", &small, SMALL), ("large", &large, LARGE)] {
        let tally = out.tally();
        if tally.ok != n as u64 || tally.total() != n as u64 {
            failures.push(format!(
                "{label} fleet: {} ok of {} accounted, want {n} of {n}",
                tally.ok,
                tally.total()
            ));
        }
        if out.report.counter("fleet.devices") != n as u64 {
            failures.push(format!(
                "{label} fleet: counter `fleet.devices` is {}, want {n}",
                out.report.counter("fleet.devices")
            ));
        }
        let per_worker: u64 = (0..WORKERS)
            .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
            .sum();
        if per_worker != n as u64 {
            failures.push(format!(
                "{label} fleet: worker shards carry {per_worker} devices, want {n}"
            ));
        }
    }
    // Bit-identity: 4 workers vs 1 worker on the same 100 devices.
    if payload(&small) != payload(&single) {
        failures.push(
            "100-device fleet differs between 4 workers and 1 worker \
             (bit-identity is a design requirement, not a tolerance)"
                .to_string(),
        );
    }
    // Compile-once: one Jacobian build for the whole process (the
    // model's), zero device-side rebuilds or refactorizations.
    if report.counter("amsim.jacobian.builds") != 1 {
        failures.push(format!(
            "counter `amsim.jacobian.builds` is {}, want 1 (model compiled more than once)",
            report.counter("amsim.jacobian.builds")
        ));
    }
    if large.report.counter("amsim.jacobian.builds") != 0
        || large.report.counter("amsim.lu.factorizations") != 0
    {
        failures.push(format!(
            "large fleet rebuilt solver state: jacobian.builds {}, lu.factorizations {} \
             (shared-model path lost)",
            large.report.counter("amsim.jacobian.builds"),
            large.report.counter("amsim.lu.factorizations")
        ));
    }

    println!("fleet_smoke: RC1 x {STEPS} steps/device, {WORKERS} workers, lane width {LANE_WIDTH}");
    println!("  {SMALL:>5} devices  {small_secs:>8.3} s  ({small_rate:>9.1} devices/s)");
    println!("  {LARGE:>5} devices  {large_secs:>8.3} s  ({large_rate:>9.1} devices/s)");
    println!(
        "  instructions retired: {}  uart bytes: {}",
        large.report.counter("vp.device.instructions"),
        large.report.counter("vp.device.uart.bytes")
    );

    if failures.is_empty() {
        println!("fleet_smoke: OK");
    } else {
        for f in &failures {
            eprintln!("fleet_smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
