//! CI smoke check for lane-batched sweep execution — the headline
//! benchmark of the batching work.
//!
//! Sweeps RC20 × 64 scenarios twice at the same worker count: once
//! through the per-instance engine (`run_ams_sweep`) and once through
//! the lane-batched engine (`run_ams_sweep_batched`). Asserts that
//!
//! * every batched waveform is **bit-identical** to its scalar twin
//!   (the determinism contract — same IEEE ops, same order, per lane);
//! * the batch counters (`amsim.batch.lanes`, `sweep.batch.blocks`)
//!   and the conserved `amsim.*` families are right;
//! * the batched sweep is at least `MIN_SPEEDUP`× faster at equal
//!   workers (the whole point of evaluating one bytecode pass over a
//!   lane-block: the shared-factor triangular solves and residual
//!   programs run over contiguous `[slot][lane]` memory).
//!
//! Writes the merged batched report as `BENCH_batch_smoke.json`. Exits nonzero
//! on any violation.

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use obs::Obs;
use std::time::Instant;
use sweep::{run_ams_sweep, run_ams_sweep_batched, AmsScenario, ScenarioBudget, SweepEngine};

const SCENARIOS: usize = 64;
const WORKERS: usize = 4;
const LANE_WIDTH: usize = 16;
const STEPS: usize = 400;
const MIN_SPEEDUP: f64 = 2.0;

fn scenarios() -> Vec<AmsScenario> {
    (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("rc20/{i}"),
            stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 5, 5e-5, 0.0, 1.0)),
            steps: STEPS,
            newton_tol: None,
            step_control: None,
        })
        .collect()
}

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(20)).expect("RC20 parses");
    let model = amsim::Simulation::new(&module)
        .dt(1e-6)
        .output("V(out)")
        .compile()
        .expect("RC20 compiles");
    let engine = SweepEngine::new().workers(WORKERS);
    let budget = ScenarioBudget::unlimited();

    // Warm-up (page in the model, stabilize frequencies), then measure.
    run_ams_sweep(&engine, &model, &scenarios()[..WORKERS], &budget).expect("warm-up runs");

    let t0 = Instant::now();
    let scalar = run_ams_sweep(&engine, &model, &scenarios(), &budget).expect("scalar sweep runs");
    let scalar_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let batched = run_ams_sweep_batched(&engine, &model, &scenarios(), LANE_WIDTH, &budget)
        .expect("batched sweep runs");
    let batched_secs = t0.elapsed().as_secs_f64();
    let speedup = scalar_secs / batched_secs;

    let compile_obs = Obs::recording();
    compile_obs.add("bench.scenarios", SCENARIOS as u64);
    let mut report = compile_obs.report().expect("recording collector reports");
    report.merge(&batched.report);
    report
        .write_json("BENCH_batch_smoke.json")
        .expect("BENCH_batch_smoke.json is writable");

    let mut failures = Vec::new();
    // Bit-identity: every batched waveform equals its scalar twin.
    let mut mismatches = 0usize;
    for (i, (b, s)) in batched.results.iter().zip(&scalar.results).enumerate() {
        let (b, s) = match (b.ok(), s.ok()) {
            (Some(b), Some(s)) => (b, s),
            _ => {
                failures.push(format!("scenario {i} did not complete in both sweeps"));
                continue;
            }
        };
        if b.waveform.len() != s.waveform.len() {
            failures.push(format!("scenario {i}: waveform lengths differ"));
            continue;
        }
        mismatches += b
            .waveform
            .iter()
            .zip(&s.waveform)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
    }
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} waveform samples differ between scalar and batched sweeps \
             (bit-identity is a design requirement, not a tolerance)"
        ));
    }
    if batched.report.counter("sweep.scenarios.ok") != SCENARIOS as u64 {
        failures.push(format!(
            "counter `sweep.scenarios.ok` is {}, want {SCENARIOS}",
            batched.report.counter("sweep.scenarios.ok")
        ));
    }
    if batched.report.counter("amsim.batch.lanes") != SCENARIOS as u64 {
        failures.push(format!(
            "counter `amsim.batch.lanes` is {}, want {SCENARIOS}",
            batched.report.counter("amsim.batch.lanes")
        ));
    }
    let blocks = (SCENARIOS as u64).div_ceil(LANE_WIDTH as u64);
    if batched.report.counter("sweep.batch.blocks") != blocks {
        failures.push(format!(
            "counter `sweep.batch.blocks` is {}, want {blocks}",
            batched.report.counter("sweep.batch.blocks")
        ));
    }
    for c in ["amsim.steps", "amsim.newton_iterations"] {
        if batched.report.counter(c) != scalar.report.counter(c) {
            failures.push(format!(
                "counter `{c}` not conserved: batched {} vs scalar {}",
                batched.report.counter(c),
                scalar.report.counter(c)
            ));
        }
    }
    // RC20 is linear: every lane stays on the shared zero-state factors,
    // so batching must not introduce a single extra factorization.
    if batched.report.counter("amsim.lu.factorizations") != 0 {
        failures.push(format!(
            "counter `amsim.lu.factorizations` is {}, want 0 (shared-factor path lost)",
            batched.report.counter("amsim.lu.factorizations")
        ));
    }
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "batched sweep speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor \
             (scalar {scalar_secs:.3}s vs batched {batched_secs:.3}s at {WORKERS} workers)"
        ));
    }

    println!(
        "batch_smoke: RC20 x {SCENARIOS} scenarios, {WORKERS} workers, lane width {LANE_WIDTH}"
    );
    println!("  scalar   {scalar_secs:>8.3} s");
    println!("  batched  {batched_secs:>8.3} s  ({speedup:.2}x)");
    println!(
        "  masked iterations: {}",
        batched.report.counter("amsim.batch.masked_iterations")
    );

    if failures.is_empty() {
        println!("batch_smoke: OK");
    } else {
        for f in &failures {
            eprintln!("batch_smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
