//! CI smoke check for the recovery ladder under deterministic fault
//! injection (requires `--features fault-inject`).
//!
//! Runs 64 diode-clamp scenarios on a 4-worker pool with 8 planned
//! faults — residual NaNs, singular/non-finite refactorizations and a
//! stimulus panic, half landing past the first checkpoint (resume rung)
//! and half before it (restart rung) — and asserts every fault recovers
//! on its expected rung, each recovered waveform is bit-identical to a
//! from-`t=0` rerun on that rung's configuration, and the recovery /
//! fault / scenario counters conserve. Writes the merged report as
//! `BENCH_chaos_smoke.json` and exits nonzero on any violation.

#[cfg(not(feature = "fault-inject"))]
fn main() {
    eprintln!("chaos_smoke requires the fault-inject feature:");
    eprintln!("  cargo run --release --features fault-inject --bin chaos_smoke");
    std::process::exit(2);
}

#[cfg(feature = "fault-inject")]
fn main() {
    chaos::run();
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use std::sync::Arc;

    use amsim::{CompiledModel, RecoveryPolicy, StepControl};
    use amsvp_core::circuits::{diode_clamp, PiecewiseConstant};
    use sweep::{
        run_ams_sweep_recovering, AmsScenario, FaultKind, FaultPlan, FaultSpec, Recovery,
        RecoveryRung, ScenarioBudget, ScenarioOutcome, SweepEngine,
    };

    const SCENARIOS: usize = 64;
    const WORKERS: usize = 4;
    const LANES: usize = 8;
    const STEPS: usize = 40;
    const DT: f64 = 1e-4;
    const SNAPSHOT_EVERY: u64 = 8;

    /// The 8 planned faults: (scenario index, kind, nominal step). Steps
    /// at or past the checkpoint cadence recover on the resume rung;
    /// earlier ones skip straight to restart.
    const FAULTS: [(usize, FaultKind, u64); 8] = [
        (3, FaultKind::ResidualNan, 13),
        (19, FaultKind::RefactorSingular, 21),
        (35, FaultKind::RefactorNonFinite, 17),
        (51, FaultKind::ResidualNan, 30),
        (7, FaultKind::RefactorNonFinite, 2),
        (23, FaultKind::StimulusPanic, 5),
        (39, FaultKind::ResidualNan, 0),
        (55, FaultKind::RefactorSingular, 4),
    ];

    fn scenarios() -> Vec<AmsScenario> {
        (0..SCENARIOS)
            .map(|i| AmsScenario {
                name: format!("clamp/{i}"),
                stim: Box::new(PiecewiseConstant::seeded(
                    i as u64 + 1,
                    5,
                    6.0 * DT,
                    0.0,
                    0.8,
                )),
                steps: STEPS,
                newton_tol: None,
                step_control: Some(StepControl::new(1e-9).max_retries(20)),
            })
            .collect()
    }

    /// From-`t=0` rerun on the rung's configuration: a scalar instance
    /// under the policy-tightened step control (both surviving rungs
    /// replay on the primary model here).
    fn reference_bits(
        model: &Arc<CompiledModel>,
        sc: &AmsScenario,
        policy: &RecoveryPolicy,
    ) -> Vec<u64> {
        let mut builder = model.instance_builder();
        if let Some(ctrl) = sc.step_control {
            builder = builder.step_control(ctrl);
        }
        let mut inst = builder.build().expect("instance builds");
        inst.set_step_control(policy.tightened(inst.step_control()))
            .expect("tightened control is valid");
        let n_inputs = model.input_names().len();
        (0..sc.steps)
            .map(|k| {
                let u = sc.stim.value(k as f64 * model.dt());
                inst.try_step(&vec![u; n_inputs]).expect("healthy rerun");
                inst.output(0).to_bits()
            })
            .collect()
    }

    pub fn run() {
        let module = vams_parser::parse_module(&diode_clamp()).expect("clamp parses");
        let model = amsim::Simulation::new(&module)
            .dt(DT)
            .output("V(out)")
            .compile()
            .expect("clamp compiles");

        let policy = RecoveryPolicy {
            snapshot_every_n_steps: SNAPSHOT_EVERY,
            ..RecoveryPolicy::default()
        };
        let mut plan = FaultPlan::new();
        for (index, kind, step) in FAULTS {
            plan = plan.target(index, FaultSpec { kind, step });
        }
        let recovery = Recovery {
            policy,
            plan,
            ..Recovery::default()
        };

        // The injected stimulus panic is expected; keep its backtrace
        // out of the CI log (the ladder catches and recovers it).
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = run_ams_sweep_recovering(
            &SweepEngine::new().workers(WORKERS),
            &model,
            &scenarios(),
            LANES,
            &ScenarioBudget::unlimited(),
            &recovery,
        )
        .expect("sweep runs");
        drop(std::panic::take_hook());

        let report = &outcome.report;
        report
            .write_json("BENCH_chaos_smoke.json")
            .expect("BENCH_chaos_smoke.json is writable");

        let mut failures = Vec::new();
        if outcome.results.len() != SCENARIOS {
            failures.push(format!(
                "expected {SCENARIOS} results, got {}",
                outcome.results.len()
            ));
        }

        // Every planned fault recovers on its exact rung, bit-identical
        // to the from-t=0 rerun on that rung's configuration.
        let reference_scenarios = scenarios();
        let mut recovered_total = 0u64;
        for (index, _, step) in FAULTS {
            let want_rung = if step >= SNAPSHOT_EVERY {
                RecoveryRung::Resume
            } else {
                RecoveryRung::Restart
            };
            match &outcome.results[index] {
                ScenarioOutcome::Recovered { result, rung, .. } => {
                    recovered_total += 1;
                    if *rung != want_rung {
                        failures.push(format!(
                            "slot {index}: recovered on {rung:?}, want {want_rung:?}"
                        ));
                    }
                    let got: Vec<u64> = result.waveform.iter().map(|v| v.to_bits()).collect();
                    let want = reference_bits(&model, &reference_scenarios[index], &policy);
                    if got != want {
                        failures.push(format!(
                            "slot {index}: recovered waveform differs from the \
                             from-t=0 rerun on the {want_rung:?} configuration"
                        ));
                    }
                }
                other => failures.push(format!("slot {index}: want Recovered, got {other:?}")),
            }
        }
        if recovered_total < 6 {
            failures.push(format!(
                "only {recovered_total} of 8 faults recovered, want >= 6"
            ));
        }

        // Counter conservation: scenario tallies, rung tallies and the
        // per-kind injection counts all match the plan exactly.
        let healthy = (SCENARIOS - FAULTS.len()) as u64;
        for (key, want) in [
            ("sweep.scenarios", SCENARIOS as u64),
            ("sweep.scenarios.ok", healthy),
            ("sweep.scenarios.recovered", FAULTS.len() as u64),
            ("sweep.scenarios.failed", 0),
            ("sweep.scenarios.panicked", 0),
            ("sweep.scenarios.budget", 0),
            ("recovery.attempts.resume", 4),
            ("recovery.recovered.resume", 4),
            ("recovery.attempts.restart", 4),
            ("recovery.recovered.restart", 4),
            ("recovery.attempts.backend", 0),
            ("recovery.gave_up", 0),
            ("fault.injected.residual_nan", 3),
            ("fault.injected.refactor_singular", 2),
            ("fault.injected.refactor_non_finite", 2),
            ("fault.injected.stimulus_panic", 1),
        ] {
            if report.counter(key) != want {
                failures.push(format!(
                    "counter `{key}` is {}, want {want}",
                    report.counter(key)
                ));
            }
        }
        let per_worker: u64 = (0..WORKERS)
            .map(|w| report.counter(&format!("sweep.worker.{w}.scenarios")))
            .sum();
        if per_worker != SCENARIOS as u64 {
            failures.push(format!(
                "per-worker scenario counts sum to {per_worker}, want {SCENARIOS} \
                 (scenarios lost or duplicated)"
            ));
        }

        if !failures.is_empty() {
            eprintln!("chaos_smoke FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "chaos_smoke OK: {recovered_total}/8 faults recovered (4 resume, 4 restart), \
             {healthy} healthy scenarios bit-stable, counters conserve"
        );
    }
}
