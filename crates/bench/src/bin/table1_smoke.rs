//! CI smoke check for the perf instrumentation pipeline.
//!
//! Runs a miniature Table I workload with a recording collector, writes
//! `BENCH_obs.json` exactly like `examples/table1.rs`, and asserts the
//! counters the benchmarks are graded on are actually present — so the
//! instrumentation cannot silently rot. Exits nonzero on any violation.

use obs::Obs;

fn main() {
    // 20 µs at Δt = 50 ns → 400 steps per circuit/level: a few seconds
    // even for the reference simulator in CI.
    let sim_time = 20e-6;
    let accuracy_steps = (sim_time / 50e-9) as usize;
    let obs = Obs::recording();
    let rows = amsvp_bench::table1_rows_with(sim_time, accuracy_steps, &obs);
    assert!(!rows.is_empty(), "table1 produced no rows");

    let report = obs.report().expect("recording collector reports");
    report
        .write_json("BENCH_obs.json")
        .expect("BENCH_obs.json is writable");
    assert!(
        std::path::Path::new("BENCH_obs.json").exists(),
        "BENCH_obs.json missing after write"
    );

    let mut failures = Vec::new();
    let mut require = |name: &str| {
        let v = report.counter(name);
        if v == 0 {
            failures.push(format!("counter `{name}` missing or zero"));
        }
        v
    };
    let newton = require("amsim.newton_iterations");
    require("amsim.steps");
    require("amsim.jacobian.builds");
    require("amsim.lu.factorizations");
    require("amsim.jacobian.reuse_hits");
    require("eln.steps");
    if report.counter("amsim.lu.factorizations") > newton {
        failures.push("more factorizations than Newton iterations".into());
    }
    if !failures.is_empty() {
        eprintln!("table1_smoke FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "table1_smoke OK: {} rows, {newton} Newton iterations, \
         {} LU factorizations, {} reuse hits",
        rows.len(),
        report.counter("amsim.lu.factorizations"),
        report.counter("amsim.jacobian.reuse_hits")
    );
}
