//! CI smoke check for the parallel sweep engine.
//!
//! Runs a small RC1 tolerance sweep on a 4-worker pool over one shared
//! compiled model, writes the merged report as `BENCH_sweep_smoke.json`, and
//! asserts the sweep-level counters plus the compile-once guarantee —
//! so a regression that silently recompiles per scenario (or loses
//! scenarios) fails CI. Exits nonzero on any violation.

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use obs::Obs;
use sweep::{run_ams_sweep, AmsScenario, ScenarioBudget, SweepEngine};

const SCENARIOS: usize = 16;
const WORKERS: usize = 4;
const STEPS: usize = 500;

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(1)).expect("RC1 parses");
    let compile_obs = Obs::recording();
    let model = amsim::Simulation::new(&module)
        .dt(1e-6)
        .output("V(out)")
        .collector(compile_obs.clone())
        .compile()
        .expect("RC1 compiles");

    let scenarios: Vec<AmsScenario> = (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("rc1/{i}"),
            stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 5, 5e-5, 0.0, 1.0)),
            steps: STEPS,
            newton_tol: Some(if i % 2 == 0 { 1e-10 } else { 1e-7 }),
            step_control: None,
        })
        .collect();
    let outcome = run_ams_sweep(
        &SweepEngine::new().workers(WORKERS),
        &model,
        &scenarios,
        &ScenarioBudget::unlimited(),
    )
    .expect("sweep runs");

    let mut report = compile_obs.report().expect("recording collector reports");
    report.merge(&outcome.report);
    report
        .write_json("BENCH_sweep_smoke.json")
        .expect("BENCH_sweep_smoke.json is writable");

    let mut failures = Vec::new();
    if outcome.results.len() != SCENARIOS {
        failures.push(format!(
            "expected {SCENARIOS} results, got {}",
            outcome.results.len()
        ));
    }
    let healthy = outcome.results.iter().filter(|r| r.is_ok()).count();
    if healthy != SCENARIOS {
        failures.push(format!(
            "expected {SCENARIOS} healthy outcomes, got {healthy}"
        ));
    }
    if report.counter("sweep.scenarios") != SCENARIOS as u64 {
        failures.push(format!(
            "counter `sweep.scenarios` is {}, want {SCENARIOS}",
            report.counter("sweep.scenarios")
        ));
    }
    if report.counter("sweep.workers") != WORKERS as u64 {
        failures.push(format!(
            "counter `sweep.workers` is {}, want {WORKERS}",
            report.counter("sweep.workers")
        ));
    }
    for w in 0..WORKERS {
        // Worker w is seeded with scenario w, so with 16 ≥ 4 every
        // worker must have executed at least one scenario.
        if report.counter(&format!("sweep.worker.{w}.scenarios")) == 0 {
            failures.push(format!("worker {w} executed no scenarios"));
        }
    }
    if report.counter("amsim.jacobian.builds") != 1 {
        failures.push(format!(
            "counter `amsim.jacobian.builds` is {}, want 1 (compile-once violated)",
            report.counter("amsim.jacobian.builds")
        ));
    }
    if report.counter("amsim.steps") != (SCENARIOS * STEPS) as u64 {
        failures.push(format!(
            "counter `amsim.steps` is {}, want {}",
            report.counter("amsim.steps"),
            SCENARIOS * STEPS
        ));
    }
    match report.timers.get("sweep.scenario") {
        Some(t) if t.count == SCENARIOS as u64 => {}
        Some(t) => failures.push(format!(
            "timer `sweep.scenario` has {} observations, want {SCENARIOS}",
            t.count
        )),
        None => failures.push("timer `sweep.scenario` missing".into()),
    }

    if !failures.is_empty() {
        eprintln!("sweep_smoke FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "sweep_smoke OK: {SCENARIOS} scenarios on {WORKERS} workers in {:.3} s, \
         {} Newton iterations, 1 Jacobian build",
        outcome.wall,
        report.counter("amsim.newton_iterations"),
    );
}
