//! Parses the paper's Figure 2 active-filter description and checks that
//! every structural element survives.

use vams_ast::{StmtKind, VamsRef};
use vams_parser::parse_module;

const FIG2: &str = include_str!("fixtures/active_filter.va");

#[test]
fn fig2_parses_completely() {
    let m = parse_module(FIG2).expect("Figure 2 must parse");
    assert_eq!(m.name, "active_filter");
    assert_eq!(m.ports.len(), 2);
    assert_eq!(m.parameters.len(), 5);
    assert_eq!(m.parameter("R2").unwrap().default.as_num(), Some(1600.0));
    assert_eq!(m.parameter("C1").unwrap().default.as_num(), Some(40e-9));
    assert_eq!(m.branches.len(), 3);
    assert_eq!(m.grounds, vec!["gnd"]);
    assert_eq!(m.reals, vec!["vlim"]);
    // (b) signal-flow: one assignment + one if/else chain.
    assert!(matches!(m.analog[0].kind, StmtKind::Assign { .. }));
    assert!(matches!(m.analog[1].kind, StmtKind::If { .. }));
    // (c) conservative: four contributions.
    let contribs: Vec<_> = m
        .analog
        .iter()
        .filter_map(|s| match &s.kind {
            StmtKind::Contribution { target, value } => Some((target, value)),
            _ => None,
        })
        .collect();
    assert_eq!(contribs.len(), 4);
    assert_eq!(*contribs[0].0, VamsRef::potential1("b1"));
    assert_eq!(*contribs[2].0, VamsRef::flow1("bc"));
    assert!(contribs[2].1.has_analog_op(), "capacitor law uses ddt");
    assert_eq!(*contribs[3].0, VamsRef::potential2("out", "gnd"));
}

#[test]
fn fig2_print_parse_is_idempotent() {
    let m = parse_module(FIG2).unwrap();
    let printed = m.to_string();
    let reparsed = parse_module(&printed).expect("printer emits valid VAMS");
    assert_eq!(reparsed.to_string(), printed);
    assert_eq!(reparsed.stmt_count(), m.stmt_count());
    assert_eq!(reparsed.branches, {
        // spans differ; compare names/topology only
        let mut b = m.branches.clone();
        for (rb, ob) in b.iter_mut().zip(&reparsed.branches) {
            rb.span = ob.span;
        }
        b
    });
}
