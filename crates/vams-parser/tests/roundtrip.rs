//! Property tests: printing an AST and reparsing it must be lossless.

use proptest::prelude::*;
use vams_ast::{
    BinOp, BranchDecl, Expr, Func, Module, NetDecl, Parameter, Port, PortDir, Span,
    Stmt, StmtKind, VamsExpr, VamsRef,
};
use vams_parser::{parse_expr, parse_module};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        ![
            "module", "endmodule", "analog", "begin", "end", "if", "else",
            "parameter", "real", "branch", "input", "output", "inout", "ground",
            "exp", "ln", "log", "sin", "cos", "tan", "sinh", "cosh", "tanh",
            "atan", "sqrt", "abs", "floor", "ceil", "min", "max", "pow", "ddt",
            "idt",
        ]
        .contains(&s.as_str())
    })
}

fn arb_ref() -> impl Strategy<Value = VamsRef> {
    prop_oneof![
        ident().prop_map(VamsRef::Ident),
        (ident(), proptest::option::of(ident()))
            .prop_map(|(a, b)| VamsRef::Potential(a, b)),
        (ident(), proptest::option::of(ident()))
            .prop_map(|(a, b)| VamsRef::Flow(a, b)),
    ]
}

/// Random expression using only printable/parseable constructs (no `Prev`).
fn arb_expr() -> impl Strategy<Value = VamsExpr> {
    let leaf = prop_oneof![
        (0.001f64..1000.0).prop_map(Expr::num),
        arb_ref().prop_map(Expr::var),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            inner.clone().prop_map(|a| -a),
            inner.clone().prop_map(|a| Expr::call1(Func::Exp, a)),
            inner.clone().prop_map(|a| Expr::call1(Func::Sin, a)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::call2(Func::Max, a, b)),
            inner.clone().prop_map(Expr::ddt),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::bin(BinOp::Lt, a, b)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::cond(c, t, e)),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (arb_ref().prop_filter("access target", VamsRef::is_access), arb_expr())
            .prop_map(|(target, value)| StmtKind::Contribution { target, value }),
        (ident(), arb_expr()).prop_map(|(name, value)| StmtKind::Assign { name, value }),
    ];
    let kind = simple.prop_recursive(2, 8, 3, |inner| {
        (
            arb_expr(),
            proptest::collection::vec(
                inner.clone().prop_map(|kind| Stmt {
                    kind,
                    span: Span::default(),
                }),
                1..3,
            ),
            proptest::collection::vec(
                inner.prop_map(|kind| Stmt {
                    kind,
                    span: Span::default(),
                }),
                0..3,
            ),
        )
            .prop_map(|(cond, then_stmts, else_stmts)| StmtKind::If {
                cond,
                then_stmts,
                else_stmts,
            })
    });
    kind.prop_map(|kind| Stmt {
        kind,
        span: Span::default(),
    })
}

fn arb_module() -> impl Strategy<Value = Module> {
    (
        ident(),
        proptest::collection::vec((ident(), prop_oneof![
            Just(PortDir::Input),
            Just(PortDir::Output),
            Just(PortDir::Inout)
        ]), 1..4),
        proptest::collection::vec((ident(), 0.001f64..1e6), 0..4),
        proptest::collection::vec(ident(), 1..5),
        proptest::collection::vec((ident(), ident(), ident()), 0..3),
        proptest::collection::vec(arb_stmt(), 0..5),
    )
        .prop_map(|(name, mut ports, params, nets, branches, analog)| {
            // Deduplicate port names to keep the module well-formed.
            ports.sort_by(|a, b| a.0.cmp(&b.0));
            ports.dedup_by(|a, b| a.0 == b.0);
            let mut m = Module::new(name);
            for (pname, dir) in ports {
                m.ports.push(Port {
                    name: pname,
                    dir,
                    span: Span::default(),
                });
            }
            for (pname, v) in params {
                m.parameters.push(Parameter {
                    name: pname,
                    default: Expr::num(v),
                    span: Span::default(),
                });
            }
            m.nets.push(NetDecl {
                discipline: "electrical".into(),
                names: nets,
                span: Span::default(),
            });
            for (p, n, b) in branches {
                m.branches.push(BranchDecl {
                    name: b,
                    pos: p,
                    neg: n,
                    span: Span::default(),
                });
            }
            m.analog = analog;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse → print is the identity on printed text.
    #[test]
    fn module_print_parse_print_fixpoint(m in arb_module()) {
        let printed = m.to_string();
        let reparsed = parse_module(&printed)
            .unwrap_or_else(|e| panic!("printer emitted invalid VAMS: {e}\n{printed}"));
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Expression print → parse preserves value at random points.
    #[test]
    fn expr_roundtrip_preserves_value(
        e in arb_expr(),
        seed in 0u64..1000,
    ) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("unparseable `{printed}`: {err}"));
        // Evaluate both at a deterministic pseudo-random environment; ddt
        // leaves cannot be evaluated, so compare a discretized stand-in by
        // checking structural variables instead when analog ops exist.
        if e.has_analog_op() {
            prop_assert_eq!(e.variables(), reparsed.variables());
            return Ok(());
        }
        let mut env = |v: &VamsRef, _delay: u32| {
            // Hash-ish deterministic value per name.
            let s = format!("{v}");
            let h = s.bytes().fold(seed, |a, b| a.wrapping_mul(31).wrapping_add(u64::from(b)));
            Some(((h % 1000) as f64) / 500.0 - 1.0)
        };
        let a = e.eval(&mut env).unwrap();
        let b = reparsed.eval(&mut env).unwrap();
        // NaN from domain errors and matching infinities (overflow in
        // exp etc.) count as equal.
        if (a.is_nan() && b.is_nan()) || a == b {
            return Ok(());
        }
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "value changed across roundtrip: {} vs {} for `{}`", a, b, printed
        );
    }
}
