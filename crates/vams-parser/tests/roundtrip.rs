//! Property tests: printing an AST and reparsing it must be lossless.
//!
//! Random ASTs come from a seeded xorshift generator, so every run
//! exercises the same reproducible modules and expressions.

use vams_ast::{
    BinOp, BranchDecl, Expr, Func, Module, NetDecl, Parameter, Port, PortDir, Span, Stmt, StmtKind,
    VamsExpr, VamsRef,
};
use vams_parser::{parse_expr, parse_module};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() as usize) % n
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "analog",
    "begin",
    "end",
    "if",
    "else",
    "parameter",
    "real",
    "branch",
    "input",
    "output",
    "inout",
    "ground",
    "exp",
    "ln",
    "log",
    "sin",
    "cos",
    "tan",
    "sinh",
    "cosh",
    "tanh",
    "atan",
    "sqrt",
    "abs",
    "floor",
    "ceil",
    "min",
    "max",
    "pow",
    "ddt",
    "idt",
];

/// Random identifier `[a-z][a-z0-9_]{0,6}`, never a keyword.
fn ident(rng: &mut Rng) -> String {
    loop {
        let len = rng.usize_in(1, 8);
        let mut s = String::new();
        s.push((b'a' + rng.pick(26) as u8) as char);
        for _ in 1..len {
            let tail = b"abcdefghijklmnopqrstuvwxyz0123456789_";
            s.push(tail[rng.pick(tail.len())] as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn opt_ident(rng: &mut Rng) -> Option<String> {
    if rng.pick(2) == 0 {
        Some(ident(rng))
    } else {
        None
    }
}

fn gen_ref(rng: &mut Rng) -> VamsRef {
    match rng.pick(3) {
        0 => VamsRef::Ident(ident(rng)),
        1 => VamsRef::Potential(ident(rng), opt_ident(rng)),
        _ => VamsRef::Flow(ident(rng), opt_ident(rng)),
    }
}

/// Random expression using only printable/parseable constructs (no `Prev`).
fn gen_expr(rng: &mut Rng, depth: usize) -> VamsExpr {
    if depth == 0 || rng.pick(4) == 0 {
        return if rng.pick(2) == 0 {
            Expr::num(rng.range(0.001, 1000.0))
        } else {
            Expr::var(gen_ref(rng))
        };
    }
    match rng.pick(11) {
        0 => gen_expr(rng, depth - 1) + gen_expr(rng, depth - 1),
        1 => gen_expr(rng, depth - 1) - gen_expr(rng, depth - 1),
        2 => gen_expr(rng, depth - 1) * gen_expr(rng, depth - 1),
        3 => gen_expr(rng, depth - 1) / gen_expr(rng, depth - 1),
        4 => -gen_expr(rng, depth - 1),
        5 => Expr::call1(Func::Exp, gen_expr(rng, depth - 1)),
        6 => Expr::call1(Func::Sin, gen_expr(rng, depth - 1)),
        7 => Expr::call2(
            Func::Max,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        8 => Expr::ddt(gen_expr(rng, depth - 1)),
        9 => Expr::bin(
            BinOp::Lt,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        _ => Expr::cond(
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
    }
}

fn gen_simple_stmt(rng: &mut Rng) -> StmtKind {
    if rng.pick(2) == 0 {
        // Contribution target must be an access (potential or flow).
        let target = loop {
            let r = gen_ref(rng);
            if r.is_access() {
                break r;
            }
        };
        StmtKind::Contribution {
            target,
            value: gen_expr(rng, 3),
        }
    } else {
        StmtKind::Assign {
            name: ident(rng),
            value: gen_expr(rng, 3),
        }
    }
}

fn gen_stmt(rng: &mut Rng, depth: usize) -> Stmt {
    let kind = if depth == 0 || rng.pick(3) > 0 {
        gen_simple_stmt(rng)
    } else {
        let cond = gen_expr(rng, 3);
        let then_stmts = (0..rng.usize_in(1, 3))
            .map(|_| gen_stmt(rng, depth - 1))
            .collect();
        let else_stmts = (0..rng.usize_in(0, 3))
            .map(|_| gen_stmt(rng, depth - 1))
            .collect();
        StmtKind::If {
            cond,
            then_stmts,
            else_stmts,
        }
    };
    Stmt {
        kind,
        span: Span::default(),
    }
}

fn gen_module(rng: &mut Rng) -> Module {
    let mut ports: Vec<(String, PortDir)> = (0..rng.usize_in(1, 4))
        .map(|_| {
            let dir = match rng.pick(3) {
                0 => PortDir::Input,
                1 => PortDir::Output,
                _ => PortDir::Inout,
            };
            (ident(rng), dir)
        })
        .collect();
    // Deduplicate port names to keep the module well-formed.
    ports.sort_by(|a, b| a.0.cmp(&b.0));
    ports.dedup_by(|a, b| a.0 == b.0);

    let mut m = Module::new(ident(rng));
    for (pname, dir) in ports {
        m.ports.push(Port {
            name: pname,
            dir,
            span: Span::default(),
        });
    }
    for _ in 0..rng.usize_in(0, 4) {
        m.parameters.push(Parameter {
            name: ident(rng),
            default: Expr::num(rng.range(0.001, 1e6)),
            span: Span::default(),
        });
    }
    m.nets.push(NetDecl {
        discipline: "electrical".into(),
        names: (0..rng.usize_in(1, 5)).map(|_| ident(rng)).collect(),
        span: Span::default(),
    });
    for _ in 0..rng.usize_in(0, 3) {
        m.branches.push(BranchDecl {
            name: ident(rng),
            pos: ident(rng),
            neg: ident(rng),
            span: Span::default(),
        });
    }
    m.analog = (0..rng.usize_in(0, 5)).map(|_| gen_stmt(rng, 2)).collect();
    m
}

/// print → parse → print is the identity on printed text.
#[test]
fn module_print_parse_print_fixpoint() {
    let mut rng = Rng::new(0xf1f1_0000);
    for _ in 0..64 {
        let m = gen_module(&mut rng);
        let printed = m.to_string();
        let reparsed = parse_module(&printed)
            .unwrap_or_else(|e| panic!("printer emitted invalid VAMS: {e}\n{printed}"));
        assert_eq!(reparsed.to_string(), printed);
    }
}

/// Expression print → parse preserves value at random points.
#[test]
fn expr_roundtrip_preserves_value() {
    let mut rng = Rng::new(0x2071_4d71);
    for case in 0..128u64 {
        let e = gen_expr(&mut rng, 3);
        let seed = case * 37 % 1000;
        let printed = e.to_string();
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|err| panic!("unparseable `{printed}`: {err}"));
        // Evaluate both at a deterministic pseudo-random environment; ddt
        // leaves cannot be evaluated, so compare a discretized stand-in by
        // checking structural variables instead when analog ops exist.
        if e.has_analog_op() {
            assert_eq!(e.variables(), reparsed.variables());
            continue;
        }
        let mut env = |v: &VamsRef, _delay: u32| {
            // Hash-ish deterministic value per name.
            let s = format!("{v}");
            let h = s
                .bytes()
                .fold(seed, |a, b| a.wrapping_mul(31).wrapping_add(u64::from(b)));
            Some(((h % 1000) as f64) / 500.0 - 1.0)
        };
        let a = e.eval(&mut env).unwrap();
        let b = reparsed.eval(&mut env).unwrap();
        // NaN from domain errors and matching infinities (overflow in
        // exp etc.) count as equal.
        if (a.is_nan() && b.is_nan()) || a == b {
            continue;
        }
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "value changed across roundtrip: {a} vs {b} for `{printed}`"
        );
    }
}
