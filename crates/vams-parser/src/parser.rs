use crate::lexer::{tokenize, Token, TokenKind};
use crate::ParseError;
use vams_ast::{
    BinOp, BranchDecl, Expr, Func, Module, NetDecl, Parameter, Port, PortDir, SourceFile, Span,
    Stmt, StmtKind, VamsExpr, VamsRef,
};

/// Recursive-descent parser over the token stream.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(
            format!("{what}, found {}", self.peek().describe()),
            self.peek_span(),
        )
    }

    // ---------------------------------------------------------------- file

    pub(crate) fn parse_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !self.at(&TokenKind::Eof) {
            modules.push(self.parse_module()?);
        }
        if modules.is_empty() {
            return Err(ParseError::new("empty source: no modules", Span::new(1, 1)));
        }
        Ok(SourceFile { modules })
    }

    pub(crate) fn parse_standalone_expr(&mut self) -> Result<VamsExpr, ParseError> {
        let e = self.parse_expr()?;
        if !self.at(&TokenKind::Eof) {
            return Err(self.unexpected("expected end of expression"));
        }
        Ok(e)
    }

    // -------------------------------------------------------------- module

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let span = self.peek_span();
        self.expect(TokenKind::Module)?;
        let (name, _) = self.expect_ident()?;
        let mut module = Module::new(name);
        module.span = span;

        // Header port list (names only; directions come from item decls).
        let mut header_ports: Vec<(String, Span)> = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    header_ports.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;

        let mut dirs: Vec<(String, PortDir, Span)> = Vec::new();
        while !self.at(&TokenKind::Endmodule) {
            self.parse_item(&mut module, &mut dirs)?;
        }
        self.expect(TokenKind::Endmodule)?;

        // Attach directions to header ports; default to inout when a port
        // has no direction declaration (legal in the subset).
        for (pname, pspan) in header_ports {
            let dir = dirs
                .iter()
                .find(|(n, _, _)| *n == pname)
                .map(|(_, d, _)| *d)
                .unwrap_or(PortDir::Inout);
            module.ports.push(Port {
                name: pname,
                dir,
                span: pspan,
            });
        }
        // Direction declarations for names missing from the header are
        // errors — catches typos early.
        for (n, _, s) in &dirs {
            if !module.ports.iter().any(|p| p.name == *n) {
                return Err(ParseError::new(
                    format!("direction declared for `{n}` which is not a header port"),
                    *s,
                ));
            }
        }
        Ok(module)
    }

    fn parse_item(
        &mut self,
        module: &mut Module,
        dirs: &mut Vec<(String, PortDir, Span)>,
    ) -> Result<(), ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Input | TokenKind::Output | TokenKind::Inout => {
                let dir = match self.bump().kind {
                    TokenKind::Input => PortDir::Input,
                    TokenKind::Output => PortDir::Output,
                    _ => PortDir::Inout,
                };
                loop {
                    let (name, nspan) = self.expect_ident()?;
                    dirs.push((name, dir, nspan));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            }
            TokenKind::Parameter => {
                self.bump();
                self.eat(&TokenKind::Real); // `parameter real` or `parameter`
                loop {
                    let (name, pspan) = self.expect_ident()?;
                    self.expect(TokenKind::Assign)?;
                    let default = self.parse_expr()?;
                    module.parameters.push(Parameter {
                        name,
                        default,
                        span: pspan,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            }
            TokenKind::Real => {
                self.bump();
                loop {
                    let (name, _) = self.expect_ident()?;
                    module.reals.push(name);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            }
            TokenKind::Branch => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (pos, _) = self.expect_ident()?;
                self.expect(TokenKind::Comma)?;
                let (neg, _) = self.expect_ident()?;
                self.expect(TokenKind::RParen)?;
                loop {
                    let (name, bspan) = self.expect_ident()?;
                    module.branches.push(BranchDecl {
                        name,
                        pos: pos.clone(),
                        neg: neg.clone(),
                        span: bspan,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            }
            TokenKind::Ground => {
                self.bump();
                loop {
                    let (name, _) = self.expect_ident()?;
                    module.grounds.push(name);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            }
            TokenKind::Analog => {
                self.bump();
                if !module.analog.is_empty() {
                    return Err(ParseError::new(
                        "multiple analog blocks in one module",
                        span,
                    ));
                }
                module.analog = self.parse_stmt_or_block()?;
            }
            TokenKind::Ident(discipline) => {
                // Discipline net declaration: `electrical a, b;`
                self.bump();
                let mut names = Vec::new();
                loop {
                    let (name, _) = self.expect_ident()?;
                    names.push(name);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
                module.nets.push(NetDecl {
                    discipline,
                    names,
                    span,
                });
            }
            _ => return Err(self.unexpected("expected a module item")),
        }
        Ok(())
    }

    // ---------------------------------------------------------- statements

    /// Parses either a single statement or a `begin .. end` block, always
    /// returning a flat list.
    fn parse_stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(&TokenKind::Begin) {
            let mut stmts = Vec::new();
            while !self.at(&TokenKind::End) {
                if self.at(&TokenKind::Eof) {
                    return Err(self.unexpected("expected `end`"));
                }
                stmts.push(self.parse_stmt()?);
            }
            self.expect(TokenKind::End)?;
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        if self.eat(&TokenKind::If) {
            self.expect(TokenKind::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(TokenKind::RParen)?;
            let then_stmts = self.parse_stmt_or_block()?;
            let else_stmts = if self.eat(&TokenKind::Else) {
                self.parse_stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt {
                kind: StmtKind::If {
                    cond,
                    then_stmts,
                    else_stmts,
                },
                span,
            });
        }

        // Contribution or assignment; both start with an identifier.
        let (name, _) = self.expect_ident()?;
        if (name == "V" || name == "I") && self.at(&TokenKind::LParen) {
            let target = self.parse_access(&name)?;
            self.expect(TokenKind::Contrib)?;
            let value = self.parse_expr()?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt {
                kind: StmtKind::Contribution { target, value },
                span,
            });
        }
        self.expect(TokenKind::Assign)?;
        let value = self.parse_expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Assign { name, value },
            span,
        })
    }

    /// Parses the argument list of a `V(..)`/`I(..)` access, the leading
    /// identifier having already been consumed.
    fn parse_access(&mut self, which: &str) -> Result<VamsRef, ParseError> {
        self.expect(TokenKind::LParen)?;
        let (a, _) = self.expect_ident()?;
        let b = if self.eat(&TokenKind::Comma) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect(TokenKind::RParen)?;
        Ok(if which == "V" {
            VamsRef::Potential(a, b)
        } else {
            VamsRef::Flow(a, b)
        })
    }

    // --------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<VamsExpr, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<VamsExpr, ParseError> {
        let cond = self.parse_or()?;
        if self.eat(&TokenKind::Question) {
            let t = self.parse_expr()?;
            self.expect(TokenKind::Colon)?;
            let e = self.parse_expr()?;
            Ok(Expr::cond(cond, t, e))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<VamsExpr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<VamsExpr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            Ok(-self.parse_unary()?)
        } else if self.eat(&TokenKind::Plus) {
            self.parse_unary()
        } else if self.eat(&TokenKind::Not) {
            // !x ≡ (x == 0)
            Ok(Expr::bin(BinOp::Eq, self.parse_unary()?, Expr::num(0.0)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<VamsExpr, ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Expr::num(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if (name == "V" || name == "I") && self.at(&TokenKind::LParen) {
                    return Ok(Expr::var(self.parse_access(&name)?));
                }
                if self.at(&TokenKind::LParen) {
                    return self.parse_call(&name, span);
                }
                Ok(Expr::var(VamsRef::Ident(name)))
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }

    fn parse_call(&mut self, name: &str, span: Span) -> Result<VamsExpr, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;

        match name {
            "ddt" => {
                if args.len() != 1 {
                    return Err(ParseError::new("ddt takes exactly one argument", span));
                }
                Ok(Expr::ddt(args.into_iter().next().expect("checked length")))
            }
            "idt" => {
                if args.len() != 1 {
                    return Err(ParseError::new(
                        "idt with initial conditions is not supported; \
                         idt takes exactly one argument",
                        span,
                    ));
                }
                Ok(Expr::idt(args.into_iter().next().expect("checked length")))
            }
            _ => {
                let func = Func::from_name(name)
                    .ok_or_else(|| ParseError::new(format!("unknown function `{name}`"), span))?;
                if args.len() != func.arity() {
                    return Err(ParseError::new(
                        format!(
                            "{name} takes {} argument(s), found {}",
                            func.arity(),
                            args.len()
                        ),
                        span,
                    ));
                }
                Ok(Expr::Call(func, args))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, parse_expr, parse_module};

    #[test]
    fn parses_rc_module() {
        let src = "
module rc(in, out);
  input in; output out;
  parameter real R = 5k;
  parameter real C = 25n;
  electrical in, out, gnd;
  ground gnd;
  branch (in, out) res;
  branch (out, gnd) cap;
  analog begin
    V(res) <+ R * I(res);
    I(cap) <+ C * ddt(V(cap));
  end
endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.name, "rc");
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].dir, PortDir::Input);
        assert_eq!(m.ports[1].dir, PortDir::Output);
        assert_eq!(m.parameter("R").unwrap().default, Expr::num(5000.0));
        assert_eq!(m.branches.len(), 2);
        assert_eq!(m.grounds, vec!["gnd"]);
        assert_eq!(m.analog.len(), 2);
        match &m.analog[1].kind {
            StmtKind::Contribution { target, value } => {
                assert_eq!(*target, VamsRef::flow1("cap"));
                assert!(value.has_analog_op());
            }
            other => panic!("expected contribution, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval_const().unwrap(), 7.0);
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval_const().unwrap(), 9.0);
        let e = parse_expr("2 - 3 - 4").unwrap();
        assert_eq!(e.eval_const().unwrap(), -5.0);
        let e = parse_expr("12 / 2 / 3").unwrap();
        assert_eq!(e.eval_const().unwrap(), 2.0);
    }

    #[test]
    fn ternary_and_logic() {
        let e = parse_expr("1 > 2 ? 10 : 2 < 3 && 1 ? 20 : 30").unwrap();
        assert_eq!(e.eval_const().unwrap(), 20.0);
        let e = parse_expr("!0 || 0").unwrap();
        assert_eq!(e.eval_const().unwrap(), 1.0);
    }

    #[test]
    fn unary_operators() {
        assert_eq!(parse_expr("-3 + 5").unwrap().eval_const().unwrap(), 2.0);
        assert_eq!(parse_expr("+4").unwrap().eval_const().unwrap(), 4.0);
        assert_eq!(parse_expr("--4").unwrap().eval_const().unwrap(), 4.0);
    }

    #[test]
    fn functions_parse_with_arity_checks() {
        assert!(parse_expr("exp(1)").is_ok());
        assert!(parse_expr("max(1, 2)").is_ok());
        assert!(parse_expr("exp(1, 2)").is_err());
        assert!(parse_expr("max(1)").is_err());
        assert!(parse_expr("frobnicate(1)").is_err());
        assert!(parse_expr("ddt(V(a))").is_ok());
        assert!(parse_expr("idt(I(a,b))").is_ok());
        assert!(parse_expr("idt(x, 0)").is_err());
    }

    #[test]
    fn accesses_in_expressions() {
        let e = parse_expr("V(a, b) + I(br) * R").unwrap();
        let vars = e.variables();
        assert!(vars.contains(&VamsRef::potential2("a", "b")));
        assert!(vars.contains(&VamsRef::flow1("br")));
        assert!(vars.contains(&VamsRef::ident("R")));
    }

    #[test]
    fn if_else_statement() {
        let src = "
module sat(in, out);
  input in; output out;
  electrical in, out;
  real y;
  analog begin
    if (V(in) > 2.5) y = 2.5;
    else if (V(in) < -2.5) begin
      y = -2.5;
    end else y = V(in);
    V(out) <+ y;
  end
endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.analog.len(), 2);
        match &m.analog[0].kind {
            StmtKind::If { else_stmts, .. } => {
                // else-arm contains the nested if
                assert_eq!(else_stmts.len(), 1);
                assert!(matches!(else_stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn multiple_modules() {
        let src = "module a(x); inout x; electrical x; endmodule
                   module b(y); inout y; electrical y; endmodule";
        let f = parse(src).unwrap();
        assert_eq!(f.modules.len(), 2);
        assert!(f.module("a").is_some());
        assert!(f.module("b").is_some());
        assert!(parse_module(src).is_err(), "two modules rejected");
    }

    #[test]
    fn undeclared_port_direction_rejected() {
        let src = "module m(a); input a, ghost; electrical a; endmodule";
        let err = parse(src).unwrap_err();
        assert!(err.message().contains("ghost"));
    }

    #[test]
    fn port_without_direction_defaults_to_inout() {
        let src = "module m(a); electrical a; endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.ports[0].dir, PortDir::Inout);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("module m(a);\n  input b$;\n").unwrap_err();
        assert!(err.span().line >= 1);
        let err = parse_expr("1 +").unwrap_err();
        assert!(err.message().contains("expected an expression"));
    }

    #[test]
    fn multiple_analog_blocks_rejected() {
        let src = "module m(a); inout a; electrical a;
                   analog V(a) <+ 0;
                   analog V(a) <+ 1;
                   endmodule";
        let err = parse(src).unwrap_err();
        assert!(err.message().contains("multiple analog blocks"));
    }

    #[test]
    fn comma_separated_parameters() {
        let src = "module m(a); inout a; electrical a;
                   parameter real R1 = 3k, R2 = 14k, R3 = 10k;
                   endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.parameters.len(), 3);
        assert_eq!(m.parameter("R2").unwrap().default, Expr::num(14000.0));
    }

    #[test]
    fn single_statement_analog_block() {
        let src = "module m(a); inout a; electrical a, gnd; ground gnd;
                   analog V(a, gnd) <+ 1.0;
                   endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.analog.len(), 1);
    }
}
