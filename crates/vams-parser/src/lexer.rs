use crate::ParseError;
use vams_ast::Span;

/// What a token is, with payloads for identifiers and numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword-like name that is not reserved.
    Ident(String),
    /// Numeric literal, already scaled (`5k` lexes as `5000.0`).
    Number(f64),
    /// `module`
    Module,
    /// `endmodule`
    Endmodule,
    /// `analog`
    Analog,
    /// `begin`
    Begin,
    /// `end`
    End,
    /// `if`
    If,
    /// `else`
    Else,
    /// `parameter`
    Parameter,
    /// `real`
    Real,
    /// `branch`
    Branch,
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
    /// `ground`
    Ground,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `<+` (contribution operator)
    Contrib,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(v) => format!("number `{v}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.literal()),
        }
    }

    fn literal(&self) -> &'static str {
        match self {
            TokenKind::Module => "module",
            TokenKind::Endmodule => "endmodule",
            TokenKind::Analog => "analog",
            TokenKind::Begin => "begin",
            TokenKind::End => "end",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Parameter => "parameter",
            TokenKind::Real => "real",
            TokenKind::Branch => "branch",
            TokenKind::Input => "input",
            TokenKind::Output => "output",
            TokenKind::Inout => "inout",
            TokenKind::Ground => "ground",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Assign => "=",
            TokenKind::Contrib => "<+",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Not => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            TokenKind::Ident(_) | TokenKind::Number(_) | TokenKind::Eof => "",
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub span: Span,
}

/// Verilog-AMS scale factor suffixes (IEEE 1364 §2.5 / Verilog-AMS LRM),
/// as decimal exponents so `25n` parses exactly like `25e-9`.
fn scale_factor(c: char) -> Option<i32> {
    Some(match c {
        'T' => 12,
        'G' => 9,
        'M' => 6,
        'K' | 'k' => 3,
        'm' => -3,
        'u' => -6,
        'n' => -9,
        'p' => -12,
        'f' => -15,
        'a' => -18,
        _ => return None,
    })
}

fn keyword(s: &str) -> Option<TokenKind> {
    Some(match s {
        "module" => TokenKind::Module,
        "endmodule" => TokenKind::Endmodule,
        "analog" => TokenKind::Analog,
        "begin" => TokenKind::Begin,
        "end" => TokenKind::End,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "parameter" => TokenKind::Parameter,
        "real" => TokenKind::Real,
        "branch" => TokenKind::Branch,
        "input" => TokenKind::Input,
        "output" => TokenKind::Output,
        "inout" => TokenKind::Inout,
        "ground" => TokenKind::Ground,
        _ => return None,
    })
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn peek2(&self) -> Option<char> {
        self.src.get(self.pos + 1).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }
}

/// Tokenizes Verilog-AMS source. `//` and `/* */` comments and compiler
/// directives (`` ` ``-prefixed lines, e.g. `` `include ``) are skipped.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numbers, unterminated block
/// comments, non-ASCII input, or unexpected characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    if !src.is_ascii() {
        // Find the first offending line for a useful message.
        for (i, line) in src.lines().enumerate() {
            if !line.is_ascii() {
                return Err(ParseError::new(
                    "non-ASCII character in source",
                    Span::new(i as u32 + 1, 1),
                ));
            }
        }
    }
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace, comments, directives.
        match cur.peek() {
            None => break,
            Some(c) if c.is_ascii_whitespace() => {
                cur.bump();
                continue;
            }
            Some('/') if cur.peek2() == Some('/') => {
                while let Some(c) = cur.bump() {
                    if c == '\n' {
                        break;
                    }
                }
                continue;
            }
            Some('/') if cur.peek2() == Some('*') => {
                let start = cur.span();
                cur.bump();
                cur.bump();
                let mut closed = false;
                while let Some(c) = cur.bump() {
                    if c == '*' && cur.peek() == Some('/') {
                        cur.bump();
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(ParseError::new("unterminated block comment", start));
                }
                continue;
            }
            Some('`') => {
                // Compiler directive: skip to end of line.
                while let Some(c) = cur.bump() {
                    if c == '\n' {
                        break;
                    }
                }
                continue;
            }
            _ => {}
        }

        let span = cur.span();
        let c = cur.peek().expect("peeked above");

        let kind = if c.is_ascii_digit()
            || (c == '.' && cur.peek2().is_some_and(|d| d.is_ascii_digit()))
        {
            lex_number(&mut cur, span)?
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            keyword(&name).unwrap_or(TokenKind::Ident(name))
        } else {
            cur.bump();
            match c {
                '(' => TokenKind::LParen,
                ')' => TokenKind::RParen,
                ',' => TokenKind::Comma,
                ';' => TokenKind::Semi,
                '+' => TokenKind::Plus,
                '-' => TokenKind::Minus,
                '*' => TokenKind::Star,
                '/' => TokenKind::Slash,
                '?' => TokenKind::Question,
                ':' => TokenKind::Colon,
                '=' if cur.peek() == Some('=') => {
                    cur.bump();
                    TokenKind::EqEq
                }
                '=' => TokenKind::Assign,
                '<' if cur.peek() == Some('+') => {
                    cur.bump();
                    TokenKind::Contrib
                }
                '<' if cur.peek() == Some('=') => {
                    cur.bump();
                    TokenKind::Le
                }
                '<' => TokenKind::Lt,
                '>' if cur.peek() == Some('=') => {
                    cur.bump();
                    TokenKind::Ge
                }
                '>' => TokenKind::Gt,
                '!' if cur.peek() == Some('=') => {
                    cur.bump();
                    TokenKind::Ne
                }
                '!' => TokenKind::Not,
                '&' if cur.peek() == Some('&') => {
                    cur.bump();
                    TokenKind::AndAnd
                }
                '|' if cur.peek() == Some('|') => {
                    cur.bump();
                    TokenKind::OrOr
                }
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character `{other}`"),
                        span,
                    ))
                }
            }
        };
        out.push(Token { kind, span });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: cur.span(),
    });
    Ok(out)
}

fn lex_number(cur: &mut Cursor<'_>, span: Span) -> Result<TokenKind, ParseError> {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '.' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Exponent (`e`/`E`) — only when followed by a digit or sign+digit,
    // otherwise the letter is a scale factor or the start of an identifier.
    let mut had_exponent = false;
    if let Some(e) = cur.peek() {
        if e == 'e' || e == 'E' {
            let next = cur.peek2();
            let digit_follows = next.is_some_and(|c| c.is_ascii_digit());
            let signed_digit = (next == Some('+') || next == Some('-'))
                && cur
                    .src
                    .get(cur.pos + 2)
                    .is_some_and(|&b| (b as char).is_ascii_digit());
            if digit_follows || signed_digit {
                had_exponent = true;
                text.push('e');
                cur.bump();
                if let Some(sign) = cur.peek() {
                    if sign == '+' || sign == '-' {
                        text.push(sign);
                        cur.bump();
                    }
                }
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Optional scale factor, folded into the literal text so `25n` parses
    // with exactly the same rounding as `25e-9`.
    if let Some(c) = cur.peek() {
        if let Some(exp) = scale_factor(c) {
            if had_exponent {
                return Err(ParseError::new(
                    format!("scale factor `{c}` cannot follow an exponent"),
                    span,
                ));
            }
            // A scale factor must not be followed by more identifier
            // characters (`5kx` is malformed).
            let after = cur.peek2();
            if after.is_none_or(|a| !(a.is_ascii_alphanumeric() || a == '_')) {
                cur.bump();
                text.push('e');
                text.push_str(&exp.to_string());
            } else {
                return Err(ParseError::new(
                    format!("malformed number suffix after `{text}{c}`"),
                    span,
                ));
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            return Err(ParseError::new(
                format!("unexpected character `{c}` after number `{text}`"),
                span,
            ));
        }
    }
    let value: f64 = text
        .parse()
        .map_err(|_| ParseError::new(format!("malformed number `{text}`"), span))?;
    Ok(TokenKind::Number(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("module m ( a , b ) ; endmodule");
        assert_eq!(k[0], TokenKind::Module);
        assert_eq!(k[1], TokenKind::Ident("m".into()));
        assert_eq!(k[2], TokenKind::LParen);
        assert_eq!(k[6], TokenKind::RParen);
        assert_eq!(k[7], TokenKind::Semi);
        assert_eq!(k[8], TokenKind::Endmodule);
        assert_eq!(k.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn contribution_vs_relational() {
        assert_eq!(
            kinds("a <+ b")[1],
            TokenKind::Contrib,
            "<+ must lex as contribution"
        );
        assert_eq!(kinds("a <= b")[1], TokenKind::Le);
        assert_eq!(kinds("a < b")[1], TokenKind::Lt);
        assert_eq!(kinds("a < +b")[1], TokenKind::Lt); // space breaks <+
    }

    #[test]
    fn numbers_with_scale_factors() {
        assert_eq!(kinds("5k")[0], TokenKind::Number(5000.0));
        assert_eq!(kinds("25n")[0], TokenKind::Number(25e-9));
        assert_eq!(kinds("1.6K")[0], TokenKind::Number(1600.0));
        assert_eq!(kinds("40n")[0], TokenKind::Number(40e-9));
        assert_eq!(kinds("1M")[0], TokenKind::Number(1e6));
        assert_eq!(kinds("2.5")[0], TokenKind::Number(2.5));
        assert_eq!(kinds(".5")[0], TokenKind::Number(0.5));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1e3")[0], TokenKind::Number(1000.0));
        assert_eq!(kinds("2.5e-6")[0], TokenKind::Number(2.5e-6));
        assert_eq!(kinds("1E+2")[0], TokenKind::Number(100.0));
    }

    #[test]
    fn exponent_vs_identifier_boundary() {
        // `5 exp(x)`: the `e` belongs to the identifier, not the number.
        let k = kinds("5 exp(1)");
        assert_eq!(k[0], TokenKind::Number(5.0));
        assert_eq!(k[1], TokenKind::Ident("exp".into()));
    }

    #[test]
    fn malformed_number_suffix_rejected() {
        assert!(tokenize("5kx").is_err());
        assert!(tokenize("5q").is_err());
    }

    #[test]
    fn comments_and_directives_skipped() {
        let k =
            kinds("a // line comment\n b /* block\ncomment */ c\n`include \"disciplines.vams\"\nd");
        let names: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = tokenize("/* oops").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn logical_operators() {
        let k = kinds("a && b || !c != d == e");
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::OrOr));
        assert!(k.contains(&TokenKind::Not));
        assert!(k.contains(&TokenKind::Ne));
        assert!(k.contains(&TokenKind::EqEq));
    }

    #[test]
    fn unexpected_character_reported_with_position() {
        let err = tokenize("a\n  #").unwrap_err();
        assert_eq!(err.span(), Span::new(2, 3));
        assert!(err.message().contains('#'));
    }

    #[test]
    fn non_ascii_rejected() {
        assert!(tokenize("a\nµ").is_err());
    }

    #[test]
    fn describe_is_useful() {
        assert_eq!(TokenKind::Contrib.describe(), "`<+`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
