use std::error::Error;
use std::fmt;

use vams_ast::Span;

/// A lexical or syntactic error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates an error at the given position.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Human-readable description (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Source position of the error.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", Span::new(3, 14));
        assert_eq!(e.to_string(), "3:14: unexpected token");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.span(), Span::new(3, 14));
    }
}
