//! Lexer and recursive-descent parser for the Verilog-AMS subset used by
//! the abstraction toolchain.
//!
//! The supported grammar covers the three block kinds the paper identifies
//! in §III (declarations, signal-flow statements, conservative contribution
//! statements): module headers, port directions, `parameter real`,
//! discipline net declarations, named branches, `real` variables, `ground`,
//! and an `analog` block with assignments, `if`/`else`, and contribution
//! statements (`<+`) over expressions with arithmetic, relational and
//! logical operators, math functions, and the analog operators
//! `ddt`/`idt`.
//!
//! Numbers accept Verilog-AMS scale factors (`5k`, `25n`, `1.6K`, ...).
//!
//! # Example
//!
//! ```
//! let src = "
//! module rc(in, out);
//!   input in; output out;
//!   parameter real R = 5k;
//!   parameter real C = 25n;
//!   electrical in, out, gnd;
//!   ground gnd;
//!   branch (in, out) res;
//!   branch (out, gnd) cap;
//!   analog begin
//!     V(res) <+ R * I(res);
//!     I(cap) <+ C * ddt(V(cap));
//!   end
//! endmodule";
//! let file = vams_parser::parse(src)?;
//! let m = file.module("rc").unwrap();
//! assert_eq!(m.branches.len(), 2);
//! assert_eq!(m.stmt_count(), 2);
//! # Ok::<(), vams_parser::ParseError>(())
//! ```

mod error;
mod lexer;
mod parser;

pub use error::ParseError;
pub use lexer::{tokenize, Token, TokenKind};

use vams_ast::{Module, SourceFile, VamsExpr};

/// Parses a complete source file (one or more modules).
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the source position of the first
/// lexical or syntactic problem.
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    parser::Parser::new(src)?.parse_file()
}

/// Parses a source that must contain exactly one module and returns it.
///
/// # Errors
///
/// Fails on lexical/syntactic errors and when the file does not contain
/// exactly one module.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let file = parse(src)?;
    match file.modules.len() {
        1 => Ok(file.modules.into_iter().next().expect("checked length")),
        n => Err(ParseError::new(
            format!("expected exactly one module, found {n}"),
            vams_ast::Span::new(1, 1),
        )),
    }
}

/// Parses a standalone expression (used by tests and interactive tooling).
///
/// # Errors
///
/// Fails if the text is not a single well-formed expression.
pub fn parse_expr(src: &str) -> Result<VamsExpr, ParseError> {
    parser::Parser::new(src)?.parse_standalone_expr()
}
