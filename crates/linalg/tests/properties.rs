//! Property-based tests for the linear-algebra kernel, driven by a seeded
//! xorshift generator so every run checks the same reproducible random
//! matrices.

use amsvp_linalg::{
    norm_inf, AnyLu, Factorization, LuFactors, Matrix, SolverKind, SparseLu, Triplets,
};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A random diagonally-dominant square matrix of dimension 1..=12.
/// Diagonal dominance guarantees non-singularity so that `solve` must work.
fn dominant_matrix(rng: &mut Rng) -> Matrix {
    let n = rng.usize_in(1, 13);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.range(-1.0, 1.0);
        }
        m[(i, i)] += (n as f64) + 1.0;
    }
    m
}

const CASES: usize = 128;

/// A·x recovered from solve(A, b) must reproduce b.
#[test]
fn solve_residual_is_small() {
    let mut rng = Rng::new(0x2e51_d0a1);
    for _ in 0..CASES {
        let a = dominant_matrix(&mut rng);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 0.5 * n as f64).collect();
        let lu = LuFactors::factor(&a).expect("dominant matrix must factor");
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x);
        let r = a.mul_vec(&x);
        let err: Vec<f64> = r.iter().zip(&b).map(|(u, v)| u - v).collect();
        assert!(norm_inf(&err) < 1e-8, "residual too large: {err:?}");
    }
}

/// Factoring and solving for columns of the identity yields an inverse:
/// A·A⁻¹ ≈ I.
#[test]
fn inverse_via_lu() {
    let mut rng = Rng::new(0x10fa_c705);
    for _ in 0..CASES {
        let a = dominant_matrix(&mut rng);
        let n = a.rows();
        let lu = LuFactors::factor(&a).unwrap();
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            lu.solve_into(&e, &mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        let prod = &a * &inv;
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }
}

/// det(A) from LU must be nonzero for dominant matrices and must flip
/// sign when two rows are swapped.
#[test]
fn det_sign_flips_on_row_swap() {
    let mut rng = Rng::new(0xde7e_c7ed);
    for _ in 0..CASES {
        let a = dominant_matrix(&mut rng);
        if a.rows() < 2 {
            continue;
        }
        let d = LuFactors::factor(&a).unwrap().det();
        assert!(d != 0.0);
        let mut swapped = a.clone();
        let n = a.cols();
        for j in 0..n {
            let t = swapped[(0, j)];
            swapped[(0, j)] = swapped[(1, j)];
            swapped[(1, j)] = t;
        }
        let ds = LuFactors::factor(&swapped).unwrap().det();
        assert!((d + ds).abs() < 1e-6 * d.abs().max(ds.abs()).max(1.0));
    }
}

/// A random sparse diagonally-dominant system as triplet stamps, with
/// duplicate coordinates to exercise accumulation.
fn sparse_system(rng: &mut Rng) -> Triplets {
    let n = rng.usize_in(2, 40);
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, (n as f64) + 2.0 + rng.range(-0.5, 0.5));
        let offdiag = rng.usize_in(0, 4);
        for _ in 0..offdiag {
            t.push(i, rng.usize_in(0, n), rng.range(-1.0, 1.0));
        }
    }
    t
}

/// Both `Factorization` backends must solve the same stamped system to
/// the same answer, including after pattern-reusing refactorizations.
#[test]
fn backends_agree_on_random_sparse_systems() {
    let mut rng = Rng::new(0x5ba5_e10c);
    for _ in 0..CASES {
        let t = sparse_system(&mut rng);
        let n = t.rows();
        let b: Vec<f64> = (0..n).map(|_| rng.range(-2.0, 2.0)).collect();
        let dense = AnyLu::analyze_with(SolverKind::Dense, &t).unwrap();
        let mut sparse = SparseLu::analyze(&t).unwrap();
        let mut xd = vec![0.0; n];
        let mut xs = vec![0.0; n];
        dense.solve_into(&b, &mut xd);
        sparse.solve_into(&b, &mut xs);
        let err: Vec<f64> = xd.iter().zip(&xs).map(|(u, v)| u - v).collect();
        assert!(norm_inf(&err) < 1e-9, "backends disagree: {err:?}");
        // New values over the same stamps: numeric-only refactor.
        let mut t2 = Triplets::new(n, n);
        for (i, j, v) in t.iter() {
            t2.push(i, j, v * 1.25 + if i == j { 0.5 } else { 0.0 });
        }
        sparse.refactor(&t2).unwrap();
        let dense2 = AnyLu::analyze_with(SolverKind::Dense, &t2).unwrap();
        sparse.solve_into(&b, &mut xs);
        dense2.solve_into(&b, &mut xd);
        let err: Vec<f64> = xd.iter().zip(&xs).map(|(u, v)| u - v).collect();
        assert!(norm_inf(&err) < 1e-9, "refactor diverged: {err:?}");
        assert_eq!(sparse.stats().refactor, 1);
    }
}

/// Triplet accumulation must agree with direct dense stamping,
/// regardless of insertion order.
#[test]
fn triplets_match_dense() {
    let mut rng = Rng::new(0x7219_1e75);
    for _ in 0..CASES {
        let count = rng.usize_in(0, 40);
        let entries: Vec<(usize, usize, f64)> = (0..count)
            .map(|_| {
                (
                    rng.usize_in(0, 6),
                    rng.usize_in(0, 6),
                    rng.range(-10.0, 10.0),
                )
            })
            .collect();
        let mut t = Triplets::new(6, 6);
        let mut d = Matrix::zeros(6, 6);
        for &(i, j, v) in &entries {
            t.push(i, j, v);
            d.stamp(i, j, v);
        }
        let m = t.to_dense();
        for i in 0..6 {
            for j in 0..6 {
                assert!((m[(i, j)] - d[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
