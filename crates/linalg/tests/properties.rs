//! Property-based tests for the linear-algebra kernel.

use amsvp_linalg::{norm_inf, solve, LuFactors, Matrix, Triplets};
use proptest::prelude::*;

/// Strategy: a random diagonally-dominant square matrix of dimension 1..=12.
/// Diagonal dominance guarantees non-singularity so that `solve` must work.
fn dominant_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = vals[i * n + j];
                }
                m[(i, i)] += (n as f64) + 1.0;
            }
            m
        })
    })
}

proptest! {
    /// A·x recovered from solve(A, b) must reproduce b.
    #[test]
    fn solve_residual_is_small(a in dominant_matrix()) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 0.5 * n as f64).collect();
        let x = solve(&a, &b).expect("dominant matrix must factor");
        let r = a.mul_vec(&x);
        let err: Vec<f64> = r.iter().zip(&b).map(|(u, v)| u - v).collect();
        prop_assert!(norm_inf(&err) < 1e-8, "residual too large: {err:?}");
    }

    /// Factoring and solving for columns of the identity yields an inverse:
    /// A·A⁻¹ ≈ I.
    #[test]
    fn inverse_via_lu(a in dominant_matrix()) {
        let n = a.rows();
        let lu = LuFactors::factor(&a).unwrap();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = lu.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        let prod = &a * &inv;
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    /// det(A) from LU must be nonzero for dominant matrices and must flip
    /// sign when two rows are swapped.
    #[test]
    fn det_sign_flips_on_row_swap(a in dominant_matrix()) {
        prop_assume!(a.rows() >= 2);
        let d = LuFactors::factor(&a).unwrap().det();
        prop_assert!(d != 0.0);
        let mut swapped = a.clone();
        let n = a.cols();
        for j in 0..n {
            let t = swapped[(0, j)];
            swapped[(0, j)] = swapped[(1, j)];
            swapped[(1, j)] = t;
        }
        let ds = LuFactors::factor(&swapped).unwrap().det();
        prop_assert!((d + ds).abs() < 1e-6 * d.abs().max(ds.abs()).max(1.0));
    }

    /// Triplet accumulation must agree with direct dense stamping,
    /// regardless of insertion order.
    #[test]
    fn triplets_match_dense(entries in proptest::collection::vec(
        (0usize..6, 0usize..6, -10.0f64..10.0), 0..40))
    {
        let mut t = Triplets::new(6, 6);
        let mut d = Matrix::zeros(6, 6);
        for &(i, j, v) in &entries {
            t.push(i, j, v);
            d.stamp(i, j, v);
        }
        let m = t.to_dense();
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((m[(i, j)] - d[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
