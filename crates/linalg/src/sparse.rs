//! Sparse LU with one-time symbolic analysis and pattern-reusing numeric
//! refactorization — the scale-out path of the `Factorization` seam.
//!
//! [`SparseLu::analyze`] performs the expensive, once-per-model work on a
//! [`Triplets`] accumulator: duplicate coordinates are coalesced into a
//! compressed column structure, a fill-reducing **minimum-degree** ordering
//! is computed on the pattern of `A + Aᵀ`, and a left-looking
//! Gilbert–Peierls factorization with partial pivoting discovers the exact
//! fill-in pattern of `L` and `U`. Everything that depends only on the
//! *structure* — the column order, the pivot sequence, the fill slots, and
//! the scatter map from raw triplet pushes to compressed values — is frozen
//! at that point.
//!
//! [`SparseLu::refactor`] then rewrites the numeric values of `L` and `U`
//! in place, with **no allocation and no symbolic work**, as long as the
//! caller stamps the same coordinate sequence (the Newton-loop case: values
//! change every rebuild, structure never does). The `FactorError::{Singular,
//! NonFinite}` taxonomy of the dense path is preserved: inputs are scanned
//! for NaN/Inf before elimination and pivots are re-checked against the
//! same `PIVOT_EPS`-relative threshold. When the frozen pivot sequence
//! degrades (a pivot far smaller than its column) or the coordinate
//! sequence changes (a topology switch), `refactor` transparently falls
//! back to a fresh analysis instead of returning garbage.
//!
//! Solves are **scratch-free**: the row permutation and the column order
//! are pre-composed into the stored factor indices, so forward/backward
//! substitution works directly in the caller's `x` buffer. This is what
//! lets many threads share one factorization (`&self`) and what makes the
//! lane-batched [`SparseLu::solve_lanes_into`] bit-identical per lane to
//! the scalar solve.

use crate::lu::PIVOT_EPS;
use crate::{FactorError, SingularMatrixError, Triplets};

/// A refactorization pivot whose magnitude falls below this fraction of
/// its column's largest entry triggers a fresh analysis (new pivot
/// sequence) rather than silently amplifying roundoff.
const PIVOT_QUALITY: f64 = 1e-3;

/// Sentinel for "row not yet pivoted" during factorization.
const UNSET: usize = usize::MAX;

/// Monotonic lifetime statistics of a [`SparseLu`], for the
/// `linalg.sparse.{analyze,refactor,fill}` observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Completed symbolic analyses (including internal re-analyses).
    pub analyze: u64,
    /// Completed pattern-reusing numeric refactorizations.
    pub refactor: u64,
    /// Cumulative nonzeros of `L + U` over all analyses (fill-in included).
    pub fill: u64,
}

/// Sparse LU factors with a frozen symbolic pattern.
///
/// See the [module docs](self) for the analyze/refactor life cycle. Built
/// from the same [`Triplets`] stamps as the dense path:
///
/// ```
/// use amsvp_linalg::{SparseLu, Triplets};
///
/// # fn main() -> Result<(), amsvp_linalg::FactorError> {
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(0, 1, 1.0);
/// t.push(1, 0, 2.0);
/// t.push(1, 1, 3.0);
/// let mut lu = SparseLu::analyze(&t)?;
/// let mut x = [0.0; 2];
/// lu.solve_into(&[9.0, 13.0], &mut x);
/// assert!((x[0] - 1.4).abs() < 1e-12);
/// assert!((x[1] - 3.4).abs() < 1e-12);
///
/// // Same coordinates, new values: numeric-only refactorization.
/// t.clear();
/// t.push(0, 0, 1.0);
/// t.push(0, 1, 0.0);
/// t.push(1, 0, 0.0);
/// t.push(1, 1, 2.0);
/// lu.refactor(&t)?;
/// lu.solve_into(&[3.0, 8.0], &mut x);
/// assert!((x[0] - 3.0).abs() < 1e-12);
/// assert!((x[1] - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Raw `(row, col)` push sequence the analysis assumed; a mismatch on
    /// refactor means the stamping structure changed and forces re-analysis.
    coords: Vec<(usize, usize)>,
    /// Raw entry `k` accumulates into `a_vals[scatter[k]]`.
    scatter: Vec<usize>,
    /// Coalesced values of `A`, column-major in *original* column order.
    a_vals: Vec<f64>,
    /// Column pointers over `a_vals`, indexed by original column.
    a_colptr: Vec<usize>,
    /// Original `(row, col)` of each `a_vals` slot (NonFinite reporting).
    a_coord: Vec<(usize, usize)>,
    /// Pivot position of each `a_vals` slot's row (`pinv[row]`).
    a_rowpos: Vec<usize>,
    /// Column order: position `j` eliminates original column `q[j]`, and
    /// the solution of position `j` lands in `x[q[j]]`.
    q: Vec<usize>,
    /// Row pivots: position `k` eliminates original row `rowperm[k]`.
    rowperm: Vec<usize>,
    /// `L` (unit diagonal implicit), per pivot position, fixed pattern.
    l_colptr: Vec<usize>,
    /// Position-space row of each `L` entry (strictly below its column).
    l_pos: Vec<usize>,
    /// `q[l_pos]` pre-composed so solves write straight into `x`.
    l_tgt: Vec<usize>,
    l_val: Vec<f64>,
    /// Strictly-upper `U` per column, rows ascending; diagonal separate.
    u_colptr: Vec<usize>,
    u_pos: Vec<usize>,
    u_tgt: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// Numeric work vector in position space; only `&mut self` methods
    /// touch it, so shared (`&self`) solves stay thread-safe.
    work: Vec<f64>,
    /// Set while the stored factors do not describe any matrix (a failed
    /// refactor); the next refactor re-analyzes from scratch.
    poisoned: bool,
    stats: SparseStats,
}

impl SparseLu {
    /// Symbolically analyzes and numerically factors `a`.
    ///
    /// # Errors
    ///
    /// * [`FactorError::NotSquare`] when the accumulator is not square;
    /// * [`FactorError::NonFinite`] when a pushed value (or an accumulated
    ///   sum) is NaN/Inf;
    /// * [`FactorError::Singular`] when no acceptable pivot exists for
    ///   some column (reported by *original* column index).
    pub fn analyze(a: &Triplets) -> Result<Self, FactorError> {
        let mut lu = SparseLu {
            n: 0,
            coords: Vec::new(),
            scatter: Vec::new(),
            a_vals: Vec::new(),
            a_colptr: Vec::new(),
            a_coord: Vec::new(),
            a_rowpos: Vec::new(),
            q: Vec::new(),
            rowperm: Vec::new(),
            l_colptr: Vec::new(),
            l_pos: Vec::new(),
            l_tgt: Vec::new(),
            l_val: Vec::new(),
            u_colptr: Vec::new(),
            u_pos: Vec::new(),
            u_tgt: Vec::new(),
            u_val: Vec::new(),
            u_diag: Vec::new(),
            work: Vec::new(),
            poisoned: true,
            stats: SparseStats::default(),
        };
        lu.reanalyze(a)?;
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros of `L + U` (fill-in and the unit diagonal included).
    pub fn factor_nnz(&self) -> usize {
        self.l_val.len() + self.u_val.len() + self.n
    }

    /// Lifetime analyze/refactor/fill tallies (monotonic).
    pub fn stats(&self) -> SparseStats {
        self.stats
    }

    /// Zeroes the statistics — used when cloning a compile-time template
    /// into a run-time instance so per-run counters start from zero.
    pub fn reset_stats(&mut self) {
        self.stats = SparseStats::default();
    }

    /// Rewrites the numeric factors for new values stamped over the same
    /// coordinate sequence. No allocation, no symbolic work in the steady
    /// state. A changed coordinate sequence or a degraded pivot falls back
    /// to a full re-analysis transparently.
    ///
    /// # Errors
    ///
    /// As [`SparseLu::analyze`]. Unlike dense
    /// [`LuFactors::factor_into`](crate::LuFactors::factor_into), the
    /// stored factors are invalid after *any* error until a subsequent
    /// call succeeds.
    pub fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError> {
        if a.rows() != a.cols() {
            self.poisoned = true;
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if self.poisoned || !self.coords_match(a) {
            return self.reanalyze(a);
        }
        if let Some((row, col)) = first_non_finite_raw(a) {
            self.poisoned = true;
            return Err(FactorError::NonFinite { row, col });
        }
        self.scatter_values(a)?;
        match self.refactor_numeric() {
            Ok(()) => {
                self.stats.refactor += 1;
                Ok(())
            }
            // The frozen pivot sequence no longer suits the values (or a
            // marginal pivot fails where a fresh choice may not): re-pivot.
            Err(_) => self.reanalyze(a),
        }
    }

    /// Solves `A·x = b` using the stored factors, writing into `x`.
    ///
    /// Needs no internal scratch: many threads may solve through one
    /// shared factorization concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()` or `x.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "solution dimension mismatch");
        // Gather P·b, stored at the final (column-order) slot of each
        // position so the substitutions can work in place in `x`.
        for k in 0..n {
            x[self.q[k]] = b[self.rowperm[k]];
        }
        // Forward substitution: L·y = P·b (unit diagonal).
        for k in 0..n {
            let xk = x[self.q[k]];
            for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                x[self.l_tgt[p]] -= self.l_val[p] * xk;
            }
        }
        // Back substitution: U·z = y; z lands in original order via `q`.
        for j in (0..n).rev() {
            let xj = x[self.q[j]] / self.u_diag[j];
            x[self.q[j]] = xj;
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                x[self.u_tgt[p]] -= self.u_val[p] * xj;
            }
        }
    }

    /// Solves `lanes` right-hand sides at once over the `[row][lane]`
    /// layout of lane-batched sweeps. Per lane the multiply/subtract
    /// sequence is identical to [`SparseLu::solve_into`], so each lane's
    /// solution is **bit-identical** to its scalar twin.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `self.dim() * lanes`,
    /// or `acc.len() != lanes`.
    pub fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n * lanes, "rhs lane-block dimension mismatch");
        assert_eq!(x.len(), n * lanes, "solution lane-block dimension mismatch");
        assert_eq!(acc.len(), lanes, "accumulator lane count mismatch");
        for k in 0..n {
            let (src, dst) = (self.rowperm[k] * lanes, self.q[k] * lanes);
            x[dst..dst + lanes].copy_from_slice(&b[src..src + lanes]);
        }
        for k in 0..n {
            let qk = self.q[k] * lanes;
            acc.copy_from_slice(&x[qk..qk + lanes]);
            for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                let (lv, tgt) = (self.l_val[p], self.l_tgt[p] * lanes);
                for (l, a) in acc.iter().enumerate() {
                    x[tgt + l] -= lv * a;
                }
            }
        }
        for j in (0..n).rev() {
            let (ud, qj) = (self.u_diag[j], self.q[j] * lanes);
            for (l, a) in acc.iter_mut().enumerate() {
                *a = x[qj + l] / ud;
            }
            x[qj..qj + lanes].copy_from_slice(acc);
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                let (uv, tgt) = (self.u_val[p], self.u_tgt[p] * lanes);
                for (l, a) in acc.iter().enumerate() {
                    x[tgt + l] -= uv * a;
                }
            }
        }
    }

    /// Whether `a`'s raw push sequence matches the analyzed one.
    fn coords_match(&self, a: &Triplets) -> bool {
        a.len() == self.coords.len()
            && a.iter()
                .zip(&self.coords)
                .all(|((i, j, _), &(ci, cj))| i == ci && j == cj)
    }

    /// Zeroes `a_vals` and re-accumulates the raw values through the
    /// scatter map — the same left-to-right order every time, so repeated
    /// stamps of the same values reproduce the same sums bit for bit.
    /// Reports accumulated-to-NonFinite slots (overflowing sums).
    fn scatter_values(&mut self, a: &Triplets) -> Result<(), FactorError> {
        self.a_vals.iter_mut().for_each(|v| *v = 0.0);
        for (k, (_, _, v)) in a.iter().enumerate() {
            self.a_vals[self.scatter[k]] += v;
        }
        for (p, v) in self.a_vals.iter().enumerate() {
            if !v.is_finite() {
                let (row, col) = self.a_coord[p];
                self.poisoned = true;
                return Err(FactorError::NonFinite { row, col });
            }
        }
        Ok(())
    }

    /// Full symbolic + numeric analysis of `a`, reusing `self`'s identity
    /// (and statistics) but rebuilding every structure.
    fn reanalyze(&mut self, a: &Triplets) -> Result<(), FactorError> {
        self.poisoned = true;
        if a.rows() != a.cols() {
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if let Some((row, col)) = first_non_finite_raw(a) {
            return Err(FactorError::NonFinite { row, col });
        }
        let n = a.rows();
        self.n = n;

        // --- Coalesce: sorted CSC over original columns + scatter map. ---
        self.coords.clear();
        self.coords.extend(a.iter().map(|(i, j, _)| (i, j)));
        let mut order: Vec<usize> = (0..self.coords.len()).collect();
        // Stable on the push index so duplicate accumulation order is the
        // push order (matches dense stamping).
        order.sort_by_key(|&k| (self.coords[k].1, self.coords[k].0, k));
        self.scatter.clear();
        self.scatter.resize(self.coords.len(), 0);
        self.a_coord.clear();
        self.a_colptr.clear();
        self.a_colptr.resize(n + 1, 0);
        for &k in &order {
            let (i, j) = self.coords[k];
            if self.a_coord.last() != Some(&(i, j)) {
                self.a_coord.push((i, j));
                self.a_colptr[j + 1] += 1;
            }
            self.scatter[k] = self.a_coord.len() - 1;
        }
        for j in 0..n {
            self.a_colptr[j + 1] += self.a_colptr[j];
        }
        let nnz = self.a_coord.len();
        self.a_vals.clear();
        self.a_vals.resize(nnz, 0.0);
        self.scatter_values(a)?;

        // --- Fill-reducing column order: minimum degree on A + Aᵀ. ---
        min_degree_order(n, &self.a_coord, &mut self.q);

        // --- Gilbert–Peierls left-looking LU with partial pivoting. ---
        let scale = self
            .a_vals
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()))
            .max(1.0);
        let mut pinv = vec![UNSET; n];
        self.rowperm.clear();
        self.rowperm.resize(n, 0);
        // Per pivot position: original rows of L's below-diagonal entries,
        // in the fixed numeric-update order discovered here.
        let mut lrows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut lvals: Vec<Vec<f64>> = vec![Vec::new(); n];
        // Per position j: the pivot positions k of U(:, j)'s entries.
        let mut urows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut x = vec![0.0; n]; // numeric work, original-row indexed
        let mut visited = vec![usize::MAX; n];
        let mut reach: Vec<usize> = Vec::new(); // DFS postorder
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            let c = self.q[j];
            // Symbolic: rows reachable from A(:, c) through finished L
            // columns; postorder gives a dependency-respecting order.
            reach.clear();
            for p in self.a_colptr[c]..self.a_colptr[c + 1] {
                let r0 = self.a_coord[p].0;
                if visited[r0] == j {
                    continue;
                }
                visited[r0] = j;
                dfs_stack.push((r0, 0));
                while let Some(top) = dfs_stack.last_mut() {
                    let r = top.0;
                    let k = pinv[r];
                    let deps: &[usize] = if k == UNSET { &[] } else { &lrows[k] };
                    let mut next = None;
                    while top.1 < deps.len() {
                        let cand = deps[top.1];
                        top.1 += 1;
                        if visited[cand] != j {
                            next = Some(cand);
                            break;
                        }
                    }
                    match next {
                        Some(cand) => {
                            visited[cand] = j;
                            dfs_stack.push((cand, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            reach.push(r);
                        }
                    }
                }
            }
            // Numeric: sparse triangular solve for column j.
            for &r in &reach {
                x[r] = 0.0;
            }
            for p in self.a_colptr[c]..self.a_colptr[c + 1] {
                x[self.a_coord[p].0] = self.a_vals[p];
            }
            for idx in (0..reach.len()).rev() {
                let r = reach[idx];
                let k = pinv[r];
                if k == UNSET {
                    continue;
                }
                let xr = x[r];
                for (i, lv) in lrows[k].iter().zip(&lvals[k]) {
                    x[*i] -= lv * xr;
                }
            }
            // Partial pivot among the not-yet-pivoted reached rows.
            let mut pivot_row = UNSET;
            let mut pivot_abs = 0.0;
            for idx in (0..reach.len()).rev() {
                let r = reach[idx];
                if pinv[r] != UNSET {
                    continue;
                }
                let v = x[r].abs();
                if !v.is_finite() {
                    return Err(FactorError::NonFinite { row: r, col: c });
                }
                if pivot_row == UNSET || v > pivot_abs {
                    pivot_abs = v;
                    pivot_row = r;
                }
            }
            if pivot_row == UNSET || pivot_abs <= PIVOT_EPS * scale {
                return Err(FactorError::Singular(SingularMatrixError { column: c }));
            }
            pinv[pivot_row] = j;
            self.rowperm[j] = pivot_row;
            let pivot = x[pivot_row];
            for idx in (0..reach.len()).rev() {
                let r = reach[idx];
                if pinv[r] == UNSET {
                    lrows[j].push(r);
                    lvals[j].push(x[r] / pivot);
                } else if pinv[r] < j {
                    urows[j].push(pinv[r]);
                }
            }
            urows[j].sort_unstable();
        }

        // --- Freeze position-space structures for refactor and solve. ---
        self.a_rowpos.clear();
        self.a_rowpos
            .extend(self.a_coord.iter().map(|&(i, _)| pinv[i]));
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_pos.clear();
        self.l_tgt.clear();
        for col in lrows.iter().take(n) {
            for &r in col {
                self.l_pos.push(pinv[r]);
                self.l_tgt.push(self.q[pinv[r]]);
            }
            self.l_colptr.push(self.l_pos.len());
        }
        self.l_val.clear();
        self.l_val.resize(self.l_pos.len(), 0.0);
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_pos.clear();
        self.u_tgt.clear();
        for col in urows.iter().take(n) {
            for &k in col {
                self.u_pos.push(k);
                self.u_tgt.push(self.q[k]);
            }
            self.u_colptr.push(self.u_pos.len());
        }
        self.u_val.clear();
        self.u_val.resize(self.u_pos.len(), 0.0);
        self.u_diag.clear();
        self.u_diag.resize(n, 0.0);
        self.work.clear();
        self.work.resize(n, 0.0);

        // One canonical numeric pass: values produced here and by every
        // later pattern-reusing refactor follow the identical operation
        // order, so analyze-then-solve and refactor-then-solve agree bit
        // for bit on identical inputs.
        self.refactor_numeric()?;
        self.poisoned = false;
        self.stats.analyze += 1;
        self.stats.fill += self.factor_nnz() as u64;
        Ok(())
    }

    /// Numeric-only factorization over the frozen pattern. Errors reflect
    /// the frozen pivot sequence failing; [`SparseLu::refactor`] treats
    /// them as a cue to re-analyze.
    fn refactor_numeric(&mut self) -> Result<(), FactorError> {
        let n = self.n;
        let scale = self
            .a_vals
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()))
            .max(1.0);
        for j in 0..n {
            let c = self.q[j];
            // Zero the work vector over this column's frozen pattern only.
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                self.work[self.u_pos[p]] = 0.0;
            }
            self.work[j] = 0.0;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.work[self.l_pos[p]] = 0.0;
            }
            for p in self.a_colptr[c]..self.a_colptr[c + 1] {
                self.work[self.a_rowpos[p]] = self.a_vals[p];
            }
            // Left-looking update: ascending pivot positions is a valid
            // dependency order, and it is *fixed*, which is what makes
            // repeated refactors of equal values bit-reproducible.
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                let k = self.u_pos[p];
                let ukj = self.work[k];
                self.u_val[p] = ukj;
                for pp in self.l_colptr[k]..self.l_colptr[k + 1] {
                    self.work[self.l_pos[pp]] -= self.l_val[pp] * ukj;
                }
            }
            let pivot = self.work[j];
            let mut colmax = pivot.abs();
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                colmax = colmax.max(self.work[self.l_pos[p]].abs());
            }
            if !colmax.is_finite() {
                self.poisoned = true;
                return Err(FactorError::NonFinite {
                    row: self.rowperm[j],
                    col: c,
                });
            }
            if pivot.abs() <= PIVOT_EPS * scale || pivot.abs() < PIVOT_QUALITY * colmax {
                self.poisoned = true;
                return Err(FactorError::Singular(SingularMatrixError { column: c }));
            }
            self.u_diag[j] = pivot;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.l_val[p] = self.work[self.l_pos[p]] / pivot;
            }
        }
        self.poisoned = false;
        Ok(())
    }
}

/// First NaN/Inf among the raw pushed values, in push order.
fn first_non_finite_raw(a: &Triplets) -> Option<(usize, usize)> {
    a.iter()
        .find(|(_, _, v)| !v.is_finite())
        .map(|(i, j, _)| (i, j))
}

/// Textbook minimum-degree ordering on the pattern of `A + Aᵀ` (no
/// supernodes or aggressive absorption — circuit matrices at VP scale do
/// not need them). Writes the column order into `q`: position `j`
/// eliminates original column `q[j]`. Deterministic: ties break toward the
/// smallest index.
fn min_degree_order(n: usize, coords: &[(usize, usize)], q: &mut Vec<usize>) {
    q.clear();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(i, j) in coords {
        if i != j {
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| (degree[v], v))
            .expect("one uneliminated node remains per step");
        q.push(v);
        eliminated[v] = true;
        // Clique the uneliminated neighbors of v, then refresh their
        // adjacency (drop eliminated nodes and duplicates) and degrees.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            let mut merged: Vec<usize> = adj[u]
                .iter()
                .copied()
                .filter(|&w| !eliminated[w])
                .chain(nbrs.iter().copied().filter(|&w| w != u))
                .collect();
            merged.sort_unstable();
            merged.dedup();
            degree[u] = merged.len();
            adj[u] = merged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LuFactors;

    /// Deterministic LCG in [-0.5, 0.5).
    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    /// A diagonally-dominant sparse band system with some random spray.
    fn band_system(n: usize, seed: u64) -> Triplets {
        let mut t = Triplets::new(n, n);
        let mut s = seed;
        for i in 0..n {
            t.push(i, i, 4.0 + rng(&mut s));
            if i + 1 < n {
                t.push(i, i + 1, rng(&mut s));
                t.push(i + 1, i, rng(&mut s));
            }
            let far = (i * 7 + 3) % n;
            if far != i {
                t.push(i, far, 0.25 * rng(&mut s));
            }
        }
        t
    }

    fn solve_dense(t: &Triplets, b: &[f64]) -> Vec<f64> {
        let lu = LuFactors::factor(&t.to_dense()).unwrap();
        let mut x = vec![0.0; b.len()];
        lu.solve_into(b, &mut x);
        x
    }

    #[test]
    fn matches_dense_on_band_system() {
        let n = 40;
        let t = band_system(n, 0xA5A5);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut slu = SparseLu::analyze(&t).unwrap();
        let mut x = vec![0.0; n];
        slu.solve_into(&b, &mut x);
        let xd = solve_dense(&t, &b);
        for (a, d) in x.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-10, "sparse {a} vs dense {d}");
        }
        assert_eq!(slu.dim(), n);
        assert!(slu.factor_nnz() >= 3 * n - 2);
        assert_eq!(slu.stats().analyze, 1);
        // Refactor with new values over the same stamps.
        let mut t2 = Triplets::new(n, n);
        for (i, j, v) in t.iter() {
            t2.push(i, j, v * 1.5 + if i == j { 1.0 } else { 0.0 });
        }
        slu.refactor(&t2).unwrap();
        slu.solve_into(&b, &mut x);
        let xd2 = solve_dense(&t2, &b);
        for (a, d) in x.iter().zip(&xd2) {
            assert!((a - d).abs() < 1e-10);
        }
        assert_eq!(slu.stats().refactor, 1);
    }

    #[test]
    fn needs_pivoting_zero_diagonal() {
        // Anti-diagonal: every pivot requires a row swap.
        let mut t = Triplets::new(3, 3);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(0, 0, 1e-20); // numerically useless diagonal entry
        let slu = SparseLu::analyze(&t).unwrap();
        let mut x = [0.0; 3];
        slu.solve_into(&[2.0, 6.0, 8.0], &mut x);
        let xd = solve_dense(&t, &[2.0, 6.0, 8.0]);
        for (a, d) in x.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-10);
        }
    }

    #[test]
    fn duplicate_stamps_accumulate_like_dense() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 0.5);
        t.push(1, 1, 2.0);
        t.push(0, 1, 0.25);
        t.push(1, 0, -0.25);
        let slu = SparseLu::analyze(&t).unwrap();
        let mut x = [0.0; 2];
        slu.solve_into(&[1.75, 1.75], &mut x);
        let xd = solve_dense(&t, &[1.75, 1.75]);
        for (a, d) in x.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_same_values_is_bit_identical() {
        let n = 30;
        let t = band_system(n, 0xBEEF);
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut slu = SparseLu::analyze(&t).unwrap();
        let mut x1 = vec![0.0; n];
        slu.solve_into(&b, &mut x1);
        slu.refactor(&t).unwrap();
        let mut x2 = vec![0.0; n];
        slu.solve_into(&b, &mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pattern_change_reanalyzes_transparently() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let mut slu = SparseLu::analyze(&t).unwrap();
        assert_eq!(slu.stats().analyze, 1);
        // New stamping structure (an off-diagonal appears).
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 2.0);
        t2.push(0, 1, 1.0);
        t2.push(1, 1, 3.0);
        slu.refactor(&t2).unwrap();
        assert_eq!(slu.stats().analyze, 2, "coordinate change must re-analyze");
        let mut x = [0.0; 2];
        slu.solve_into(&[4.0, 3.0], &mut x);
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_swing_repivots_instead_of_failing() {
        // Frozen pivots favor the diagonal; afterwards the diagonal
        // collapses to ~0 and the off-diagonal dominates — the numeric
        // refactor must fall back to a fresh analysis, not error out.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 10.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 10.0);
        let mut slu = SparseLu::analyze(&t).unwrap();
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 1e-16);
        t2.push(0, 1, 1.0);
        t2.push(1, 0, 1.0);
        t2.push(1, 1, 1e-16);
        slu.refactor(&t2).unwrap();
        assert!(slu.stats().analyze >= 2);
        let mut x = [0.0; 2];
        slu.solve_into(&[1.0, 2.0], &mut x);
        let xd = solve_dense(&t2, &[1.0, 2.0]);
        for (a, d) in x.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-9);
        }
    }

    #[test]
    fn error_taxonomy_matches_dense() {
        let rect = Triplets::new(2, 3);
        assert_eq!(
            SparseLu::analyze(&rect).unwrap_err(),
            FactorError::NotSquare { rows: 2, cols: 3 }
        );
        let mut nan = Triplets::new(2, 2);
        nan.push(0, 0, 1.0);
        nan.push(1, 1, f64::NAN);
        assert_eq!(
            SparseLu::analyze(&nan).unwrap_err(),
            FactorError::NonFinite { row: 1, col: 1 }
        );
        let mut sing = Triplets::new(2, 2);
        sing.push(0, 0, 1.0);
        sing.push(0, 1, 2.0);
        sing.push(1, 0, 2.0);
        sing.push(1, 1, 4.0);
        assert!(matches!(
            SparseLu::analyze(&sing).unwrap_err(),
            FactorError::Singular(_)
        ));
        // A structurally empty column is singular too.
        let mut hole = Triplets::new(2, 2);
        hole.push(0, 0, 1.0);
        hole.push(1, 0, 1.0);
        assert!(matches!(
            SparseLu::analyze(&hole).unwrap_err(),
            FactorError::Singular(_)
        ));
    }

    #[test]
    fn recovers_after_failed_refactor() {
        let t = band_system(12, 7);
        let mut slu = SparseLu::analyze(&t).unwrap();
        let mut bad = Triplets::new(12, 12);
        for (i, j, v) in t.iter() {
            bad.push(i, j, if i == 3 && j == 3 { f64::INFINITY } else { v });
        }
        assert!(matches!(
            slu.refactor(&bad).unwrap_err(),
            FactorError::NonFinite { .. }
        ));
        // The next good refactor must fully recover (re-analysis path).
        slu.refactor(&t).unwrap();
        let b: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let mut x = vec![0.0; 12];
        slu.solve_into(&b, &mut x);
        let xd = solve_dense(&t, &b);
        for (a, d) in x.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-10);
        }
    }

    #[test]
    fn lane_solves_are_bitwise_scalar() {
        let n = 25;
        let lanes = 6;
        let t = band_system(n, 0x1234);
        let slu = SparseLu::analyze(&t).unwrap();
        let mut s = 99u64;
        let b_soa: Vec<f64> = (0..n * lanes).map(|_| rng(&mut s)).collect();
        let mut x_soa = vec![0.0; n * lanes];
        let mut acc = vec![0.0; lanes];
        slu.solve_lanes_into(&b_soa, &mut x_soa, lanes, &mut acc);
        for l in 0..lanes {
            let b_lane: Vec<f64> = (0..n).map(|i| b_soa[i * lanes + l]).collect();
            let mut x_lane = vec![0.0; n];
            slu.solve_into(&b_lane, &mut x_lane);
            for i in 0..n {
                assert_eq!(
                    x_lane[i].to_bits(),
                    x_soa[i * lanes + l].to_bits(),
                    "lane {l} row {i}"
                );
            }
        }
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        // A pure band: minimum degree must keep elimination fill-free
        // (L and U stay within the band), the whole point of ordering.
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let slu = SparseLu::analyze(&t).unwrap();
        assert!(
            slu.factor_nnz() <= 3 * n,
            "tridiagonal fill blew up: {} nonzeros",
            slu.factor_nnz()
        );
    }
}
