use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container behind MNA assembly and the LU
/// factorization in [`crate::LuFactors`]. Circuit matrices in this workspace
/// are small (tens of rows), so a dense representation is both simpler and
/// faster than a sparse one.
///
/// # Example
///
/// ```
/// use amsvp_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// let v = m.mul_vec(&[3.0, 4.0]);
/// assert_eq!(v, vec![3.0, 8.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the element at `(i, j)`, or `None` when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sets every element to zero, keeping the shape.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Copies `other` into `self`, reusing the existing allocation when
    /// the capacity suffices. The shape is taken from `other`, so this
    /// works for the first copy into a `Matrix::zeros(0, 0)` placeholder
    /// as well as for repeated copies in a solver loop.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Adds `v` to element `(i, j)` (the MNA "stamp" operation).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn stamp(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "stamp out of bounds");
        self.data[i * self.cols + j] += v;
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes the matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Computes `self * v` into a caller-provided buffer, so fixed-step
    /// transient loops can run without per-step allocation.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// Maximum absolute element, useful for scaling/conditioning checks.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(1, 1), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.stamp(0, 0, 1.5);
        m.stamp(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch in mul_vec")]
    fn mul_vec_into_rejects_short_input() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![0.0; 2];
        m.mul_vec_into(&[1.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "output dimension mismatch")]
    fn mul_vec_into_rejects_short_output() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![0.0; 1];
        m.mul_vec_into(&[1.0, 1.0], &mut out);
    }

    #[test]
    fn matrix_mul_identity() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn max_abs_scans_all() {
        let m = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 4.0]]);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::identity(1);
        assert!(!format!("{m:?}").is_empty());
    }
}
