use std::error::Error;
use std::fmt;

use crate::{Matrix, Triplets};

/// Error returned when a matrix is singular to working precision.
///
/// Carries the pivot column at which elimination failed, which for MNA
/// systems usually identifies a floating node or a loop of ideal sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination step (column) at which no usable pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular to working precision at column {}",
            self.column
        )
    }
}

impl Error for SingularMatrixError {}

/// Error returned by [`LuFactors::factor`] / [`LuFactors::factor_into`].
///
/// Factorization can fail for three reasons: the input is not even square
/// (a structural error — the assembled system is over- or
/// under-determined), elimination hit a zero pivot (a numerical error —
/// the matrix is singular to working precision), or the input carries a
/// NaN/Inf entry (upstream corruption — typically an overflowed device
/// evaluation). All are data-dependent conditions for callers assembling
/// matrices from user netlists, so they surface as `Err` rather than
/// panicking, and NaNs are caught here instead of propagating silently
/// through [`LuFactors::solve_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// The matrix is not square, so no LU factorization exists.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular to working precision.
    Singular(SingularMatrixError),
    /// The matrix holds a NaN or infinite entry, so elimination would
    /// only spread the corruption.
    NonFinite {
        /// Row of the first non-finite entry encountered.
        row: usize,
        /// Column of the first non-finite entry encountered.
        col: usize,
    },
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotSquare { rows, cols } => {
                write!(f, "cannot factor a non-square {rows}x{cols} matrix")
            }
            FactorError::Singular(e) => e.fmt(f),
            FactorError::NonFinite { row, col } => {
                write!(f, "matrix holds a non-finite entry at ({row}, {col})")
            }
        }
    }
}

impl Error for FactorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FactorError::Singular(e) => Some(e),
            FactorError::NotSquare { .. } | FactorError::NonFinite { .. } => None,
        }
    }
}

impl From<SingularMatrixError> for FactorError {
    fn from(e: SingularMatrixError) -> Self {
        FactorError::Singular(e)
    }
}

/// LU factorization with partial pivoting (`P·A = L·U`).
///
/// Factor once, then call [`LuFactors::solve_into`] for each right-hand
/// side. This is exactly the pattern of a fixed-timestep linear transient
/// solver: the MNA matrix is constant, only the excitation changes every
/// step.
///
/// # Example
///
/// ```
/// use amsvp_linalg::{LuFactors, Matrix};
///
/// # fn main() -> Result<(), amsvp_linalg::FactorError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = LuFactors::factor(&a)?;
/// let mut x = [0.0; 2];
/// lu.solve_into(&[4.0, 3.0], &mut x);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: solve uses `b[perm[i]]`.
    perm: Vec<usize>,
    /// Sign of the permutation, used by [`LuFactors::det`].
    perm_sign: f64,
}

/// Pivots smaller than this (relative to the largest element in the column)
/// are treated as zero. Shared with the sparse backend so the two report
/// singularity at the same threshold.
pub(crate) const PIVOT_EPS: f64 = 1e-13;

impl LuFactors {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`FactorError::NotSquare`] when `a` is not square;
    /// * [`FactorError::NonFinite`] when `a` holds a NaN/Inf entry;
    /// * [`FactorError::Singular`] if no acceptable pivot exists at some
    ///   elimination step.
    pub fn factor(a: &Matrix) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if let Some((row, col)) = first_non_finite(a) {
            return Err(FactorError::NonFinite { row, col });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..a.rows()).collect();
        let perm_sign = eliminate(&mut lu, &mut perm)?;
        Ok(LuFactors {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Re-factors `a` into this value's existing storage, so Newton loops
    /// can refresh their factorization without allocating. The dimension
    /// may differ from the previous factorization (buffers grow as
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError`] as [`LuFactors::factor`] does; on a
    /// [`FactorError::NotSquare`] or [`FactorError::NonFinite`] input the
    /// stored factors are untouched, while after
    /// [`FactorError::Singular`] they are invalid and must not be used
    /// for [`LuFactors::solve`] until a subsequent factorization
    /// succeeds.
    pub fn factor_into(&mut self, a: &Matrix) -> Result<(), FactorError> {
        if !a.is_square() {
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if let Some((row, col)) = first_non_finite(a) {
            return Err(FactorError::NonFinite { row, col });
        }
        self.lu.copy_from(a);
        self.perm.clear();
        self.perm.extend(0..a.rows());
        self.perm_sign = eliminate(&mut self.lu, &mut self.perm)?;
        Ok(())
    }

    /// Re-factors the system accumulated in `a` into this value's
    /// existing storage — the dense implementation of
    /// [`Factorization::refactor`](crate::Factorization::refactor).
    ///
    /// The stamps are accumulated in push order into zeroed storage, which
    /// is exactly how the solver cores historically filled their dense
    /// work matrix, so the resulting factors (and every later solve) are
    /// bit-identical to the pre-seam code path.
    ///
    /// # Errors
    ///
    /// As [`LuFactors::factor`]. On [`FactorError::NotSquare`] the stored
    /// factors are untouched; after any other error they are invalid
    /// until a subsequent factorization succeeds.
    pub fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if self.lu.rows() != n || self.lu.cols() != n {
            self.lu = Matrix::zeros(n, n);
        } else {
            self.lu.clear();
        }
        for (i, j, v) in a.iter() {
            self.lu.stamp(i, j, v);
        }
        if let Some((row, col)) = first_non_finite(&self.lu) {
            return Err(FactorError::NonFinite { row, col });
        }
        self.perm.clear();
        self.perm.extend(0..n);
        self.perm_sign = eliminate(&mut self.lu, &mut self.perm)?;
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`, writing the solution into a caller-provided buffer
    /// to avoid per-step allocation in transient loops.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()` or `x.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "solution dimension mismatch");
        // Forward substitution with permutation: L·y = P·b.
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            let row = self.lu.row(i);
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= row[j] * xj;
            }
            x[i] = acc;
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= row[j] * xj;
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A·x = b` for `lanes` right-hand sides at once, sharing the
    /// stored factors — the structure-of-arrays kernel of lane-batched
    /// transient sweeps over one linearization.
    ///
    /// `b` and `x` are laid out `[row][lane]` with the lane index
    /// contiguous (`b[i * lanes + l]`), so the inner lane loops run over
    /// adjacent memory and auto-vectorize.
    ///
    /// # Determinism
    ///
    /// Lane `l`'s solution is **bit-identical** to
    /// `solve_into(&b_lane_l, ..)`: per lane the substitution performs the
    /// same multiply/subtract sequence in the same order; only the loop
    /// nesting changes. Batched sweeps rely on this to reproduce scalar
    /// waveforms exactly.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `self.dim() * lanes`,
    /// or `acc.len() != lanes`.
    pub fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n * lanes, "rhs lane-block dimension mismatch");
        assert_eq!(x.len(), n * lanes, "solution lane-block dimension mismatch");
        assert_eq!(acc.len(), lanes, "accumulator lane count mismatch");
        // Forward substitution with permutation: L·y = P·b.
        for i in 0..n {
            acc.copy_from_slice(&b[self.perm[i] * lanes..(self.perm[i] + 1) * lanes]);
            let row = self.lu.row(i);
            for (j, &lij) in row.iter().enumerate().take(i) {
                let xj = &x[j * lanes..(j + 1) * lanes];
                for (a, v) in acc.iter_mut().zip(xj) {
                    *a -= lij * v;
                }
            }
            x[i * lanes..(i + 1) * lanes].copy_from_slice(acc);
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            acc.copy_from_slice(&x[i * lanes..(i + 1) * lanes]);
            for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                let xj = &x[j * lanes..(j + 1) * lanes];
                for (a, v) in acc.iter_mut().zip(xj) {
                    *a -= uij * v;
                }
            }
            let uii = row[i];
            for (xi, a) in x[i * lanes..(i + 1) * lanes].iter_mut().zip(acc.iter()) {
                *xi = a / uii;
            }
        }
    }

    /// Determinant of the original matrix (product of U's diagonal, signed
    /// by the permutation parity).
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Returns the position of the first NaN/Inf entry of `a`, if any.
fn first_non_finite(a: &Matrix) -> Option<(usize, usize)> {
    for i in 0..a.rows() {
        if let Some(j) = a.row(i).iter().position(|v| !v.is_finite()) {
            return Some((i, j));
        }
    }
    None
}

/// Gaussian elimination with partial pivoting, in place over `lu` (which
/// holds the matrix on entry and the combined factors on exit) and `perm`.
/// Returns the permutation sign. The input was scanned for NaN/Inf before
/// this runs, but elimination itself can overflow to infinity; the pivot
/// scan re-checks the active column so such corruption still surfaces as
/// [`FactorError::NonFinite`] instead of poisoning the factors.
fn eliminate(lu: &mut Matrix, perm: &mut [usize]) -> Result<f64, FactorError> {
    let n = lu.rows();
    let mut perm_sign = 1.0;
    let scale = lu.max_abs().max(1.0);

    for k in 0..n {
        // Partial pivoting: pick the largest |value| in column k at or
        // below the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for i in k..n {
            let v = lu[(i, k)].abs();
            if !v.is_finite() {
                return Err(FactorError::NonFinite { row: i, col: k });
            }
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val <= PIVOT_EPS * scale {
            return Err(FactorError::Singular(SingularMatrixError { column: k }));
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            perm_sign = -perm_sign;
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            if factor != 0.0 {
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
    }
    Ok(perm_sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    /// Allocating convenience over `solve_into` for test brevity (the
    /// public API is buffer-based only).
    fn solve(lu: &LuFactors, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; b.len()];
        lu.solve_into(b, &mut x);
        x
    }

    #[test]
    fn solve_identity() {
        let lu = LuFactors::factor(&Matrix::identity(3)).unwrap();
        assert_close(&solve(&lu, &[1.0, 2.0, 3.0]), &[1.0, 2.0, 3.0], 1e-14);
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        assert_close(&solve(&lu, &[5.0, 7.0]), &[7.0, 5.0], 1e-14);
    }

    #[test]
    fn refactor_from_triplets_matches_factor_bitwise() {
        // `refactor` stamps push-order into zeroed storage — it must
        // reproduce the dense factor of the accumulated matrix bit for
        // bit (the golden-corpus stability contract of the seam).
        let mut t = Triplets::new(3, 3);
        t.push(2, 0, 1.5);
        t.push(0, 0, 0.5);
        t.push(0, 0, 0.25); // duplicate accumulates
        t.push(1, 1, -2.0);
        t.push(0, 2, 3.0);
        t.push(2, 2, 1.0);
        t.push(1, 0, 0.125);
        let mut lu = LuFactors::factor(&Matrix::identity(3)).unwrap();
        lu.refactor(&t).unwrap();
        let fresh = LuFactors::factor(&t.to_dense()).unwrap();
        let b = [1.0, 2.0, 3.0];
        let (mut x1, mut x2) = ([0.0; 3], [0.0; 3]);
        lu.solve_into(&b, &mut x1);
        fresh.solve_into(&b, &mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Error taxonomy flows through unchanged.
        let rect = Triplets::new(2, 3);
        assert_eq!(
            lu.refactor(&rect).unwrap_err(),
            FactorError::NotSquare { rows: 2, cols: 3 }
        );
        let mut nan = Triplets::new(2, 2);
        nan.push(0, 0, 1.0);
        nan.push(1, 1, f64::NAN);
        assert_eq!(
            lu.refactor(&nan).unwrap_err(),
            FactorError::NonFinite { row: 1, col: 1 }
        );
    }

    #[test]
    fn singular_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = LuFactors::factor(&a).unwrap_err();
        assert_eq!(
            err,
            FactorError::Singular(SingularMatrixError { column: 1 })
        );
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn non_square_factor_is_an_error_not_a_panic() {
        let rect = Matrix::zeros(2, 3);
        assert_eq!(
            LuFactors::factor(&rect).unwrap_err(),
            FactorError::NotSquare { rows: 2, cols: 3 }
        );
        // factor_into on a non-square input leaves the old factors usable.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut lu = LuFactors::factor(&a).unwrap();
        let err = lu.factor_into(&rect).unwrap_err();
        assert_eq!(err, FactorError::NotSquare { rows: 2, cols: 3 });
        assert!(err.to_string().contains("non-square"));
        let x = solve(&lu, &[5.0, 10.0]);
        let back = a.mul_vec(&x);
        assert_close(&back, &[5.0, 10.0], 1e-12);
    }

    #[test]
    fn non_finite_entry_is_reported_not_propagated() {
        let mut a = Matrix::identity(3);
        a[(1, 2)] = f64::NAN;
        assert_eq!(
            LuFactors::factor(&a).unwrap_err(),
            FactorError::NonFinite { row: 1, col: 2 }
        );
        a[(1, 2)] = f64::INFINITY;
        let err = LuFactors::factor(&a).unwrap_err();
        assert_eq!(err, FactorError::NonFinite { row: 1, col: 2 });
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn factor_into_keeps_old_factors_on_non_finite_input() {
        let good = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut bad = Matrix::identity(2);
        bad[(0, 0)] = f64::NAN;
        let mut lu = LuFactors::factor(&good).unwrap();
        assert_eq!(
            lu.factor_into(&bad).unwrap_err(),
            FactorError::NonFinite { row: 0, col: 0 }
        );
        // The stored factors still describe `good`.
        let x = solve(&lu, &[5.0, 10.0]);
        assert_close(&good.mul_vec(&x), &[5.0, 10.0], 1e-12);
    }

    #[test]
    fn det_matches_known() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        assert!((lu.det() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_with_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        let mut x = vec![0.0; 2];
        lu.solve_into(&[5.0, 10.0], &mut x);
        let back = a.mul_vec(&x);
        assert_close(&back, &[5.0, 10.0], 1e-12);
    }

    #[test]
    fn factor_into_reuses_storage_and_matches_factor() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]);
        let mut lu = LuFactors::factor(&a).unwrap();
        lu.factor_into(&b).unwrap();
        let fresh = LuFactors::factor(&b).unwrap();
        assert_close(
            &solve(&lu, &[5.0, 10.0]),
            &solve(&fresh, &[5.0, 10.0]),
            1e-14,
        );
        assert!((lu.det() - fresh.det()).abs() < 1e-12);
        // Dimension changes are allowed: buffers grow to fit.
        lu.factor_into(&Matrix::identity(3)).unwrap();
        assert_eq!(lu.dim(), 3);
        assert_close(&solve(&lu, &[1.0, 2.0, 3.0]), &[1.0, 2.0, 3.0], 1e-14);
    }

    #[test]
    fn factor_into_reports_singular() {
        let good = Matrix::identity(2);
        let bad = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut lu = LuFactors::factor(&good).unwrap();
        let err = lu.factor_into(&bad).unwrap_err();
        assert_eq!(
            err,
            FactorError::Singular(SingularMatrixError { column: 1 })
        );
    }

    #[test]
    fn solve_lanes_matches_scalar_bitwise() {
        // Moderate deterministic system with pivoting, solved for several
        // lanes at once; each lane must reproduce the scalar solve bit for
        // bit (the batched-sweep determinism contract).
        let n = 12;
        let lanes = 7;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0xDEADBEEF_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[((i + 1) % n, i)] += n as f64; // off-diagonal dominance forces swaps
        }
        let lu = LuFactors::factor(&a).unwrap();
        let mut b_soa = vec![0.0; n * lanes];
        for v in b_soa.iter_mut() {
            *v = next();
        }
        let mut x_soa = vec![0.0; n * lanes];
        let mut acc = vec![0.0; lanes];
        lu.solve_lanes_into(&b_soa, &mut x_soa, lanes, &mut acc);
        for l in 0..lanes {
            let b_lane: Vec<f64> = (0..n).map(|i| b_soa[i * lanes + l]).collect();
            let x_lane = solve(&lu, &b_lane);
            for i in 0..n {
                assert_eq!(
                    x_lane[i].to_bits(),
                    x_soa[i * lanes + l].to_bits(),
                    "lane {l} row {i}: scalar {} vs batched {}",
                    x_lane[i],
                    x_soa[i * lanes + l]
                );
            }
        }
    }

    #[test]
    fn residual_small_on_moderate_system() {
        // Deterministic pseudo-random SPD-ish matrix.
        let n = 24;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0x12345678_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64; // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = solve(&LuFactors::factor(&a).unwrap(), &b);
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }
}
