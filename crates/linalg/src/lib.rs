//! Linear algebra kernel used by the MNA-based solvers: dense and sparse
//! LU behind one [`Factorization`] seam.
//!
//! This crate provides exactly the operations the electrical solvers in this
//! workspace need:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual arithmetic.
//! * [`Triplets`] — a coordinate-format builder that accumulates MNA stamps;
//!   the common input of both factorization backends.
//! * [`LuFactors`] — dense LU with partial pivoting (small systems: the
//!   paper's circuits peak at 22 nodes / 41 branches).
//! * [`SparseLu`] — sparse LU with one-time symbolic analysis (minimum-degree
//!   ordering, frozen fill pattern) and allocation-free numeric
//!   refactorization (large systems: RC500-class ladders and up).
//! * [`Factorization`] / [`AnyLu`] / [`SolverKind`] — the backend seam:
//!   `analyze` once per model, `refactor` per Jacobian rebuild,
//!   `solve_into` / `solve_lanes_into` per iteration, with `Auto`
//!   selection by size and density.
//! * Vector helpers ([`norm2`], [`norm_inf`], [`nrmse`]) including the
//!   normalized root-mean-square error metric the paper reports.
//!
//! # Example
//!
//! ```
//! use amsvp_linalg::{AnyLu, Factorization, SolverKind, Triplets};
//!
//! # fn main() -> Result<(), amsvp_linalg::FactorError> {
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 2.0);
//! t.push(1, 1, 3.0);
//! let lu = AnyLu::analyze_with(SolverKind::Auto, &t)?;
//! let mut x = [0.0; 2];
//! lu.solve_into(&[9.0, 13.0], &mut x);
//! assert!((x[0] - 1.4).abs() < 1e-12);
//! assert!((x[1] - 3.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod factorization;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod lu;
mod matrix;
mod sparse;
mod triplet;
mod vector;

pub use factorization::{AnyLu, Factorization, SolverKind, SPARSE_DIM_THRESHOLD};
pub use lu::{FactorError, LuFactors, SingularMatrixError};
pub use matrix::Matrix;
pub use sparse::{SparseLu, SparseStats};
pub use triplet::Triplets;
pub use vector::{axpy, dot, norm2, norm_inf, nrmse, rmse, scale};
