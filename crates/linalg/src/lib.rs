//! Small dense linear algebra kernel used by the MNA-based solvers.
//!
//! This crate provides exactly the operations the electrical solvers in this
//! workspace need:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual arithmetic.
//! * [`LuFactors`] — LU factorization with partial pivoting, reusable for
//!   repeated solves against the same matrix (the fixed-timestep linear
//!   transient case of the ELN solver).
//! * [`Triplets`] — a coordinate-format builder that accumulates MNA stamps
//!   and converts to a dense matrix (circuit matrices in this workspace are
//!   small; the paper's circuits peak at 22 nodes / 41 branches).
//! * Vector helpers ([`norm2`], [`norm_inf`], [`nrmse`]) including the
//!   normalized root-mean-square error metric the paper reports.
//!
//! # Example
//!
//! ```
//! use amsvp_linalg::{Matrix, LuFactors};
//!
//! # fn main() -> Result<(), amsvp_linalg::FactorError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[9.0, 13.0]);
//! assert!((x[0] - 1.4).abs() < 1e-12);
//! assert!((x[1] - 3.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod lu;
mod matrix;
mod triplet;
mod vector;

pub use lu::{FactorError, LuFactors, SingularMatrixError};
pub use matrix::Matrix;
pub use triplet::Triplets;
pub use vector::{axpy, dot, norm2, norm_inf, nrmse, rmse, scale};

/// Solves the dense linear system `a * x = b` in one call.
///
/// This is a convenience wrapper around [`LuFactors::factor`] followed by
/// [`LuFactors::solve`]. Prefer keeping the [`LuFactors`] around when the
/// same matrix is solved against many right-hand sides.
///
/// # Errors
///
/// Returns [`FactorError::NotSquare`] when `a` is not square and
/// [`FactorError::Singular`] when it is singular to working precision.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), amsvp_linalg::FactorError> {
/// let a = amsvp_linalg::Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = amsvp_linalg::solve(&a, &[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, FactorError> {
    Ok(LuFactors::factor(a)?.solve(b))
}
