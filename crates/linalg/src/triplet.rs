use crate::Matrix;

/// Coordinate-format (COO) accumulator for building MNA matrices.
///
/// Device models "stamp" their contributions with [`Triplets::push`]; the
/// solver then materializes a dense [`Matrix`] with [`Triplets::to_dense`].
/// Duplicate coordinates accumulate, which is exactly the MNA stamping rule.
///
/// # Example
///
/// ```
/// use amsvp_linalg::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates accumulate
/// t.push(1, 1, 4.0);
/// let m = t.to_dense();
/// assert_eq!(m[(0, 0)], 3.0);
/// assert_eq!(m[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty accumulator with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows of the target matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the target matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-accumulation) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `v` at `(i, j)`. Duplicates accumulate on conversion.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the declared shape.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "triplet out of bounds");
        self.entries.push((i, j, v));
    }

    /// Discards all entries, keeping capacity (per-step rebuild pattern).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Materializes the accumulated entries as a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(i, j, v) in &self.entries {
            m.stamp(i, j, v);
        }
        m
    }

    /// Iterates over the raw entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }
}

impl Extend<(usize, usize, f64)> for Triplets {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (i, j, v) in iter {
            self.push(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_duplicates() {
        let mut t = Triplets::new(3, 3);
        t.push(1, 2, 1.0);
        t.push(1, 2, -0.25);
        let m = t.to_dense();
        assert_eq!(m[(1, 2)], 0.75);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 2);
        assert_eq!(t.to_dense()[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        let mut t = Triplets::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn extend_and_iter() {
        let mut t = Triplets::new(2, 2);
        t.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(t.iter().count(), 2);
        let m = t.to_dense();
        assert_eq!(m[(1, 1)], 2.0);
    }
}
