use crate::Matrix;

/// Coordinate-format (COO) accumulator for building MNA matrices.
///
/// Device models "stamp" their contributions with [`Triplets::push`]; the
/// solver then materializes a dense [`Matrix`] with [`Triplets::to_dense`].
/// Duplicate coordinates accumulate, which is exactly the MNA stamping rule.
///
/// # Example
///
/// ```
/// use amsvp_linalg::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates accumulate
/// t.push(1, 1, 4.0);
/// let m = t.to_dense();
/// assert_eq!(m[(0, 0)], 3.0);
/// assert_eq!(m[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty accumulator with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows of the target matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the target matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-accumulation) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `v` at `(i, j)`. Duplicates accumulate on conversion.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the declared shape.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "triplet out of bounds");
        self.entries.push((i, j, v));
    }

    /// Discards all entries, keeping capacity (per-step rebuild pattern).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Materializes the accumulated entries as a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(i, j, v) in &self.entries {
            m.stamp(i, j, v);
        }
        m
    }

    /// Iterates over the raw entries as `(row, col, val)` in insertion
    /// order. Duplicate coordinates appear once per push; use
    /// [`Triplets::sort_dedup`] first when one entry per coordinate is
    /// needed.
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_linalg::Triplets;
    ///
    /// let mut t = Triplets::new(2, 2);
    /// t.push(1, 0, 2.5);
    /// t.push(0, 1, -1.0);
    /// let entries: Vec<(usize, usize, f64)> = t.iter().collect();
    /// assert_eq!(entries, vec![(1, 0, 2.5), (0, 1, -1.0)]);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Coalesces duplicate stamps in place: entries are sorted by
    /// `(row, col)` and duplicates are summed (in insertion order, so the
    /// accumulated values match [`Triplets::to_dense`] bit for bit). After
    /// this call every coordinate appears at most once.
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_linalg::Triplets;
    ///
    /// let mut t = Triplets::new(2, 2);
    /// t.push(1, 1, 4.0);
    /// t.push(0, 0, 1.0);
    /// t.push(0, 0, 2.0);
    /// t.sort_dedup();
    /// let entries: Vec<(usize, usize, f64)> = t.iter().collect();
    /// assert_eq!(entries, vec![(0, 0, 3.0), (1, 1, 4.0)]);
    /// ```
    pub fn sort_dedup(&mut self) {
        // Stable sort keeps duplicates in insertion order, so summing
        // runs left to right exactly like dense stamping does.
        self.entries.sort_by_key(|&(i, j, _)| (i, j));
        let mut out = 0usize;
        for k in 0..self.entries.len() {
            let (i, j, v) = self.entries[k];
            if out > 0 && self.entries[out - 1].0 == i && self.entries[out - 1].1 == j {
                self.entries[out - 1].2 += v;
            } else {
                self.entries[out] = (i, j, v);
                out += 1;
            }
        }
        self.entries.truncate(out);
    }

    /// Returns the structural nonzeros — the distinct `(row, col)`
    /// coordinates stamped so far, sorted row-major — without modifying
    /// the accumulator. This is the input of symbolic analysis: a
    /// coordinate counts even when its values cancel to zero.
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_linalg::Triplets;
    ///
    /// let mut t = Triplets::new(2, 2);
    /// t.push(1, 1, 1.0);
    /// t.push(0, 0, 2.0);
    /// t.push(1, 1, -1.0); // cancels numerically, still structural
    /// assert_eq!(t.pattern(), vec![(0, 0), (1, 1)]);
    /// ```
    pub fn pattern(&self) -> Vec<(usize, usize)> {
        let mut coords: Vec<(usize, usize)> =
            self.entries.iter().map(|&(i, j, _)| (i, j)).collect();
        coords.sort_unstable();
        coords.dedup();
        coords
    }
}

impl Extend<(usize, usize, f64)> for Triplets {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (i, j, v) in iter {
            self.push(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_duplicates() {
        let mut t = Triplets::new(3, 3);
        t.push(1, 2, 1.0);
        t.push(1, 2, -0.25);
        let m = t.to_dense();
        assert_eq!(m[(1, 2)], 0.75);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 2);
        assert_eq!(t.to_dense()[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        let mut t = Triplets::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn extend_and_iter() {
        let mut t = Triplets::new(2, 2);
        t.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(t.iter().count(), 2);
        let m = t.to_dense();
        assert_eq!(m[(1, 1)], 2.0);
    }

    #[test]
    fn sort_dedup_coalesces_and_matches_dense() {
        let mut t = Triplets::new(3, 3);
        t.push(2, 1, 0.5);
        t.push(0, 0, 1.0);
        t.push(2, 1, 0.25);
        t.push(0, 0, -0.125);
        let dense = t.to_dense();
        t.sort_dedup();
        assert_eq!(t.len(), 2);
        let entries: Vec<(usize, usize, f64)> = t.iter().collect();
        assert_eq!(entries, vec![(0, 0, 0.875), (2, 1, 0.75)]);
        // Coalescing must not change the materialized matrix.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.to_dense()[(i, j)].to_bits(), dense[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn pattern_is_sorted_structural_and_nondestructive() {
        let mut t = Triplets::new(2, 2);
        t.push(1, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, -1.0); // cancels numerically, still a structural entry
        assert_eq!(t.pattern(), vec![(0, 1), (1, 0)]);
        assert_eq!(t.len(), 3, "pattern() must not coalesce the entries");
    }
}
