//! The `Factorization` seam: one API over dense and sparse direct solvers.
//!
//! Solver cores ([`amsim`'s Newton loop, `eln`'s fixed-matrix transient)
//! talk to their linear algebra exclusively through [`Factorization`]:
//! analyze once per compiled model, refactor on every Jacobian rebuild,
//! solve (scalar or lane-batched) every iteration. [`AnyLu`] is the
//! concrete handle they store — a two-variant enum rather than a trait
//! object, because factors are cloned into run-time instances and solved
//! through `&self` from many threads, and static dispatch keeps the
//! per-iteration solve calls free of vtable indirection.
//!
//! Backends are picked per compiled model by [`SolverKind`]: `Auto` (the
//! default) applies a size/density heuristic, `Dense`/`Sparse` force a
//! backend. The dense path through this seam reproduces the historical
//! `LuFactors` behavior **bit for bit** — same stamp accumulation order,
//! same elimination — which is what keeps the golden waveform corpus
//! byte-stable across the redesign.

use crate::{FactorError, LuFactors, SparseLu, SparseStats, Triplets};

/// Backend selection for the [`Factorization`] seam.
///
/// `Auto` resolves at model-compile time from the assembled system's size
/// and density; the resolved choice is then fixed for the model's
/// lifetime (clones, instances, and batch lanes inherit it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick [`SolverKind::Sparse`] for large, sparse systems and
    /// [`SolverKind::Dense`] otherwise (see [`SolverKind::resolve`]).
    #[default]
    Auto,
    /// Dense LU with partial pivoting ([`LuFactors`]).
    Dense,
    /// Sparse LU with a frozen symbolic pattern ([`SparseLu`]).
    Sparse,
}

/// `Auto` resolves to sparse only at or above this dimension: below it the
/// dense kernel's tight loops win regardless of structure, and every
/// pre-existing corpus circuit (≤ ~100 unknowns) stays bit-identical on
/// the dense path.
pub const SPARSE_DIM_THRESHOLD: usize = 128;

impl SolverKind {
    /// Resolves `Auto` against a system's dimension and structural
    /// nonzero count; `Dense` and `Sparse` return themselves. The
    /// heuristic: sparse when `dim >= 128` and at most a quarter of the
    /// matrix is structurally nonzero.
    pub fn resolve(self, dim: usize, structural_nnz: usize) -> SolverKind {
        match self {
            SolverKind::Auto => {
                if dim >= SPARSE_DIM_THRESHOLD && structural_nnz * 4 <= dim * dim {
                    SolverKind::Sparse
                } else {
                    SolverKind::Dense
                }
            }
            fixed => fixed,
        }
    }
}

/// Direct-solver factorization of a square system assembled as
/// [`Triplets`] stamps.
///
/// The life cycle is *analyze once, refactor many, solve often*:
///
/// * [`Factorization::analyze`] does everything that may allocate or make
///   structural decisions (orderings, fill patterns);
/// * [`Factorization::refactor`] renews the numeric factors after the
///   caller re-stamped the same structure with new values (Newton
///   rebuilds, time-step changes) — steady-state allocation-free;
/// * [`Factorization::solve_into`] / [`Factorization::solve_lanes_into`]
///   take `&self` and no internal scratch, so one factorization may serve
///   many threads and lanes concurrently.
pub trait Factorization: Sized {
    /// Builds a factorization from scratch, choosing structure and
    /// performing the first numeric factorization.
    ///
    /// # Errors
    ///
    /// [`FactorError::NotSquare`], [`FactorError::NonFinite`], or
    /// [`FactorError::Singular`] exactly as the dense
    /// [`LuFactors::factor`] taxonomy defines them.
    fn analyze(a: &Triplets) -> Result<Self, FactorError>;

    /// Renews the numeric factors for freshly stamped values.
    ///
    /// # Errors
    ///
    /// As [`Factorization::analyze`]; after an error the factors must be
    /// treated as invalid until a subsequent call succeeds.
    fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError>;

    /// Dimension of the factored system.
    fn dim(&self) -> usize;

    /// Solves `A·x = b` into the caller's buffer. Panics on dimension
    /// mismatch.
    fn solve_into(&self, b: &[f64], x: &mut [f64]);

    /// Solves `lanes` right-hand sides over the `[row][lane]` SoA layout;
    /// per lane bit-identical to [`Factorization::solve_into`]. `acc` is
    /// caller scratch of length `lanes`. Panics on dimension mismatch.
    fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]);
}

impl Factorization for LuFactors {
    fn analyze(a: &Triplets) -> Result<Self, FactorError> {
        // `to_dense` stamps in push order — the accumulation order the
        // historical dense path used, preserved for bit-identity.
        if a.rows() != a.cols() {
            return Err(FactorError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        LuFactors::factor(&a.to_dense())
    }

    fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError> {
        LuFactors::refactor(self, a)
    }

    fn dim(&self) -> usize {
        LuFactors::dim(self)
    }

    fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        LuFactors::solve_into(self, b, x);
    }

    fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]) {
        LuFactors::solve_lanes_into(self, b, x, lanes, acc);
    }
}

impl Factorization for SparseLu {
    fn analyze(a: &Triplets) -> Result<Self, FactorError> {
        SparseLu::analyze(a)
    }

    fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError> {
        SparseLu::refactor(self, a)
    }

    fn dim(&self) -> usize {
        SparseLu::dim(self)
    }

    fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        SparseLu::solve_into(self, b, x);
    }

    fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]) {
        SparseLu::solve_lanes_into(self, b, x, lanes, acc);
    }
}

/// A dense-or-sparse factorization behind one concrete, cloneable type —
/// what the solver cores store in compiled models, workspaces, and batch
/// lanes.
///
/// ```
/// use amsvp_linalg::{AnyLu, Factorization, SolverKind, Triplets};
///
/// # fn main() -> Result<(), amsvp_linalg::FactorError> {
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// // 2×2 is far below the sparse threshold: Auto resolves to Dense.
/// let kind = SolverKind::Auto.resolve(t.rows(), t.pattern().len());
/// assert_eq!(kind, SolverKind::Dense);
/// let lu = AnyLu::analyze_with(kind, &t)?;
/// let mut x = [0.0; 2];
/// lu.solve_into(&[2.0, 8.0], &mut x);
/// assert_eq!(x, [1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum AnyLu {
    /// Dense LU with partial pivoting.
    Dense(LuFactors),
    /// Sparse LU over a frozen symbolic pattern (boxed: the symbolic
    /// tables dwarf the dense handle, and `AnyLu` values are moved and
    /// cloned when models are instantiated).
    Sparse(Box<SparseLu>),
}

impl AnyLu {
    /// Analyzes `a` with the requested backend. `kind` must already be
    /// resolved ([`SolverKind::Auto`] is resolved here against `a`'s
    /// dimensions and structural density as a convenience).
    pub fn analyze_with(kind: SolverKind, a: &Triplets) -> Result<AnyLu, FactorError> {
        match kind.resolve(a.rows(), a.pattern().len()) {
            SolverKind::Dense => Ok(AnyLu::Dense(<LuFactors as Factorization>::analyze(a)?)),
            _ => Ok(AnyLu::Sparse(Box::new(SparseLu::analyze(a)?))),
        }
    }

    /// The backend this factorization runs on (never `Auto`).
    pub fn kind(&self) -> SolverKind {
        match self {
            AnyLu::Dense(_) => SolverKind::Dense,
            AnyLu::Sparse(_) => SolverKind::Sparse,
        }
    }

    /// Sparse-backend statistics; zeros on the dense backend (the dense
    /// path has no analyze/fill notion — its counters live in the solver
    /// cores).
    pub fn sparse_stats(&self) -> SparseStats {
        match self {
            AnyLu::Dense(_) => SparseStats::default(),
            AnyLu::Sparse(s) => s.stats(),
        }
    }

    /// Zeroes the sparse statistics — called when a compile-time template
    /// factorization is cloned into a run-time instance, so instance
    /// counters report run-time work only.
    pub fn reset_stats(&mut self) {
        if let AnyLu::Sparse(s) = self {
            s.reset_stats();
        }
    }
}

impl Factorization for AnyLu {
    /// Auto-selects the backend by the [`SolverKind::resolve`] heuristic.
    fn analyze(a: &Triplets) -> Result<Self, FactorError> {
        AnyLu::analyze_with(SolverKind::Auto, a)
    }

    fn refactor(&mut self, a: &Triplets) -> Result<(), FactorError> {
        #[cfg(feature = "fault-inject")]
        if let Some(e) = crate::fault::take_refactor_failure() {
            return Err(e);
        }
        match self {
            AnyLu::Dense(f) => f.refactor(a),
            AnyLu::Sparse(f) => f.refactor(a),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AnyLu::Dense(f) => f.dim(),
            AnyLu::Sparse(f) => f.dim(),
        }
    }

    fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        match self {
            AnyLu::Dense(f) => f.solve_into(b, x),
            AnyLu::Sparse(f) => f.solve_into(b, x),
        }
    }

    fn solve_lanes_into(&self, b: &[f64], x: &mut [f64], lanes: usize, acc: &mut [f64]) {
        match self {
            AnyLu::Dense(f) => f.solve_lanes_into(b, x, lanes, acc),
            AnyLu::Sparse(f) => f.solve_lanes_into(b, x, lanes, acc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize) -> Triplets {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0 + i as f64 * 0.01);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t
    }

    #[test]
    fn auto_resolution_heuristic() {
        assert_eq!(SolverKind::Auto.resolve(8, 20), SolverKind::Dense);
        assert_eq!(SolverKind::Auto.resolve(100, 300), SolverKind::Dense);
        assert_eq!(SolverKind::Auto.resolve(500, 1500), SolverKind::Sparse);
        // Large but dense stays dense.
        assert_eq!(SolverKind::Auto.resolve(200, 200 * 200), SolverKind::Dense);
        // Forced kinds pass through untouched.
        assert_eq!(SolverKind::Dense.resolve(500, 1500), SolverKind::Dense);
        assert_eq!(SolverKind::Sparse.resolve(8, 20), SolverKind::Sparse);
    }

    #[test]
    fn backends_agree_through_the_trait() {
        let t = system(20);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut dense = AnyLu::analyze_with(SolverKind::Dense, &t).unwrap();
        let mut sparse = AnyLu::analyze_with(SolverKind::Sparse, &t).unwrap();
        assert_eq!(dense.kind(), SolverKind::Dense);
        assert_eq!(sparse.kind(), SolverKind::Sparse);
        assert_eq!(dense.dim(), 20);
        assert_eq!(sparse.dim(), 20);
        let mut xd = vec![0.0; 20];
        let mut xs = vec![0.0; 20];
        dense.solve_into(&b, &mut xd);
        sparse.solve_into(&b, &mut xs);
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-12, "dense {d} vs sparse {s}");
        }
        // Refactor both with scaled values; they must stay in agreement.
        let mut t2 = Triplets::new(20, 20);
        for (i, j, v) in t.iter() {
            t2.push(i, j, v * 2.0);
        }
        dense.refactor(&t2).unwrap();
        sparse.refactor(&t2).unwrap();
        dense.solve_into(&b, &mut xd);
        sparse.solve_into(&b, &mut xs);
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_reset_on_instance_clone() {
        let t = system(10);
        let template = AnyLu::analyze_with(SolverKind::Sparse, &t).unwrap();
        assert_eq!(template.sparse_stats().analyze, 1);
        let mut instance = template.clone();
        instance.reset_stats();
        assert_eq!(instance.sparse_stats(), SparseStats::default());
        instance.refactor(&t).unwrap();
        assert_eq!(instance.sparse_stats().refactor, 1);
        assert_eq!(instance.sparse_stats().analyze, 0);
        // Dense backends report zeros and tolerate resets.
        let mut dense = AnyLu::analyze_with(SolverKind::Dense, &t).unwrap();
        dense.reset_stats();
        assert_eq!(dense.sparse_stats(), SparseStats::default());
    }
}
