//! Vector helpers, including the NRMSE accuracy metric used by the paper.

/// Euclidean (L2) norm of `v`.
///
/// # Example
///
/// ```
/// assert_eq!(amsvp_linalg::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum-magnitude (L∞) norm of `v`.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `v *= alpha`.
pub fn scale(alpha: f64, v: &mut [f64]) {
    for x in v {
        *x *= alpha;
    }
}

/// Root-mean-square error between a signal and its reference.
///
/// # Panics
///
/// Panics if the lengths differ or the slices are empty.
pub fn rmse(signal: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(signal.len(), reference.len(), "rmse length mismatch");
    assert!(!signal.is_empty(), "rmse of empty signal");
    let sum: f64 = signal
        .iter()
        .zip(reference)
        .map(|(s, r)| (s - r) * (s - r))
        .sum();
    (sum / signal.len() as f64).sqrt()
}

/// Normalized root-mean-square error, the accuracy metric of Table I of the
/// paper: RMSE divided by the peak-to-peak range of the reference.
///
/// Returns the plain RMSE when the reference is constant (range 0), so the
/// metric stays finite.
///
/// # Panics
///
/// Panics if the lengths differ or the slices are empty.
///
/// # Example
///
/// ```
/// let reference = [0.0, 1.0, 0.0, 1.0];
/// let identical = reference;
/// assert_eq!(amsvp_linalg::nrmse(&identical, &reference), 0.0);
/// ```
pub fn nrmse(signal: &[f64], reference: &[f64]) -> f64 {
    let e = rmse(signal, reference);
    let max = reference.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = reference.iter().cloned().fold(f64::INFINITY, f64::min);
    let range = max - min;
    if range > 0.0 {
        e / range
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
    }

    #[test]
    fn rmse_known_value() {
        let s = [1.0, 2.0];
        let r = [0.0, 0.0];
        assert!((rmse(&s, &r) - (2.5_f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let r = [0.0, 2.0];
        let s = [0.5, 2.5];
        // rmse = 0.5, range = 2 → nrmse = 0.25
        assert!((nrmse(&s, &r) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn nrmse_constant_reference_falls_back_to_rmse() {
        let r = [1.0, 1.0];
        let s = [1.5, 0.5];
        assert!((nrmse(&s, &r) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn zero_error_for_identical_signals() {
        let r = [0.3, -0.7, 0.9];
        assert_eq!(nrmse(&r, &r), 0.0);
        assert_eq!(rmse(&r, &r), 0.0);
    }
}
