//! Deterministic fault injection for the factorization seam.
//!
//! Compiled only under the `fault-inject` feature. A test (or a chaos
//! harness) *arms* a forced refactorization failure on the current
//! thread; the next call to [`AnyLu::refactor`](crate::AnyLu) on that
//! thread consumes the armed fault and returns the corresponding
//! [`FactorError`](crate::FactorError) without touching the numeric
//! kernels. Take-once semantics keep injection deterministic: exactly
//! one refactor fails per arming, and the thread-local scoping means
//! concurrent sweep workers never observe each other's faults.

use std::cell::Cell;

use crate::lu::{FactorError, SingularMatrixError};

/// Which forced failure the next `refactor` call should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorFault {
    /// Report the matrix singular (pivot breakdown at column 0).
    Singular,
    /// Report a non-finite entry (at row 0, column 0).
    NonFinite,
}

thread_local! {
    static ARMED: Cell<Option<RefactorFault>> = const { Cell::new(None) };
}

/// Arms a forced failure for the next [`crate::AnyLu::refactor`] call on
/// this thread.
pub fn arm_refactor_failure(kind: RefactorFault) {
    ARMED.with(|c| c.set(Some(kind)));
}

/// Clears any armed failure on this thread.
pub fn disarm_refactor_failure() {
    ARMED.with(|c| c.set(None));
}

/// Consumes the armed failure, if any, converting it to the error the
/// refactor call reports.
pub(crate) fn take_refactor_failure() -> Option<FactorError> {
    ARMED.with(|c| c.take()).map(|k| match k {
        RefactorFault::Singular => FactorError::Singular(SingularMatrixError { column: 0 }),
        RefactorFault::NonFinite => FactorError::NonFinite { row: 0, col: 0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnyLu, Factorization, SolverKind, Triplets};

    #[test]
    fn armed_fault_fails_exactly_one_refactor() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 3.0);
        let mut lu = AnyLu::analyze_with(SolverKind::Dense, &t).unwrap();
        arm_refactor_failure(RefactorFault::Singular);
        assert!(matches!(lu.refactor(&t), Err(FactorError::Singular(_))));
        // Take-once: the next refactor succeeds again.
        assert!(lu.refactor(&t).is_ok());

        arm_refactor_failure(RefactorFault::NonFinite);
        assert!(matches!(
            lu.refactor(&t),
            Err(FactorError::NonFinite { .. })
        ));
        assert!(lu.refactor(&t).is_ok());
    }

    #[test]
    fn disarm_clears_the_pending_fault() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 2.0);
        let mut lu = AnyLu::analyze_with(SolverKind::Dense, &t).unwrap();
        arm_refactor_failure(RefactorFault::Singular);
        disarm_refactor_failure();
        assert!(lu.refactor(&t).is_ok());
    }
}
