use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::marker::PhantomData;
use std::time::Instant;

use obs::{CounterTracker, Obs};

use crate::signal::{AnySignal, SignalState};
use crate::trace::{Trace, TraceEvent, TraceValue};
use crate::{Sig, SimTime};

/// Identifier of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(u32);

/// A simulation process: a struct activated by the kernel whenever one of
/// its sensitivity signals changes or a timed self-notification fires.
///
/// The `Any` supertrait lets testbenches downcast processes back to their
/// concrete type after a run (see [`Kernel::process_ref`]).
pub trait Process: std::any::Any {
    /// Called once when the simulation starts, before any event is
    /// processed. Useful for driving initial values and scheduling the
    /// first timed activation.
    fn init(&mut self, _ctx: &mut ProcCtx<'_>) {}

    /// Called on every activation.
    fn activate(&mut self, ctx: &mut ProcCtx<'_>);
}

/// Error returned by [`Kernel::run_until`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// More than the configured number of delta cycles elapsed without
    /// time advancing — a zero-delay oscillation in the model.
    DeltaOverflow {
        /// The time at which the oscillation occurred.
        at: SimTime,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::DeltaOverflow { at, limit } => write!(
                f,
                "delta-cycle overflow at {at}: more than {limit} delta cycles \
                 without time advancing"
            ),
        }
    }
}

impl Error for RunError {}

/// The execution context handed to a process during activation.
///
/// All signal access and scheduling goes through this context, which keeps
/// the `Process` trait object borrow-checker-friendly (the kernel owns all
/// shared state).
pub struct ProcCtx<'k> {
    signals: &'k mut [Box<dyn AnySignal>],
    now: SimTime,
    self_id: ProcId,
    /// Writes performed in this activation: signal indices to update.
    dirty: &'k mut Vec<u32>,
    /// Timed notifications requested: (time, process).
    timed: &'k mut Vec<(SimTime, ProcId)>,
}

impl ProcCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the running process.
    pub fn self_id(&self) -> ProcId {
        self.self_id
    }

    /// Reads the current (update-phase) value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn read<T: Clone + PartialEq + 'static>(&self, sig: Sig<T>) -> T {
        let state = self.signals[sig.index as usize]
            .as_any()
            .downcast_ref::<SignalState<T>>()
            .expect("signal type mismatch");
        state.current.clone()
    }

    /// Buffers a write; it becomes visible in the next update phase and
    /// wakes sensitive processes only if the value changes.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn write<T: Clone + PartialEq + 'static>(&mut self, sig: Sig<T>, value: T) {
        let state = self.signals[sig.index as usize]
            .as_any_mut()
            .downcast_mut::<SignalState<T>>()
            .expect("signal type mismatch");
        state.pending = Some(value);
        self.dirty.push(sig.index);
    }

    /// Schedules this process to run again after `delay` (SystemC's
    /// `next_trigger`/timed `notify`).
    pub fn notify_self_after(&mut self, delay: SimTime) {
        let t = self.now + delay;
        self.timed.push((t, self.self_id));
    }

    /// Schedules another process after `delay`.
    pub fn notify_after(&mut self, proc: ProcId, delay: SimTime) {
        self.timed.push((self.now + delay, proc));
    }
}

/// The discrete-event kernel: owns signals, processes and the event queue.
pub struct Kernel {
    signals: Vec<Box<dyn AnySignal>>,
    processes: Vec<Box<dyn Process>>,
    /// Static sensitivity: per signal, the processes it wakes.
    watchers: Vec<Vec<ProcId>>,
    /// Timed events: min-heap of (time, sequence, process).
    queue: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
    now: SimTime,
    started: bool,
    max_delta: usize,
    activations: u64,
    delta_cycles: u64,
    /// (signal index, trace channel, kind) for traced signals.
    traced: Vec<(u32, usize, TracedKind)>,
    trace: Trace,
    obs: Obs,
    obs_activations: CounterTracker,
    obs_delta_cycles: CounterTracker,
}

#[derive(Debug, Clone, Copy)]
enum TracedKind {
    Real,
    Bit,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Kernel {
            signals: Vec::new(),
            processes: Vec::new(),
            watchers: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            started: false,
            max_delta: 10_000,
            activations: 0,
            delta_cycles: 0,
            traced: Vec::new(),
            trace: Trace::default(),
            obs: Obs::none(),
            obs_activations: CounterTracker::default(),
            obs_delta_cycles: CounterTracker::default(),
        }
    }

    /// Attaches an instrumentation collector (chainable). The kernel
    /// reports `de.activations` / `de.delta_cycles` counters and times
    /// each [`Kernel::run_until`] call under `de.run_until`; with a
    /// disabled handle (the default) the event loop is untouched.
    #[must_use]
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Non-chaining variant of [`Kernel::collector`].
    pub fn set_collector(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Creates a typed signal with an initial value.
    pub fn signal<T: Clone + PartialEq + 'static>(&mut self, initial: T) -> Sig<T> {
        let index = self.signals.len() as u32;
        self.signals.push(Box::new(SignalState {
            current: initial,
            pending: None,
        }));
        self.watchers.push(Vec::new());
        Sig {
            index,
            _marker: PhantomData,
        }
    }

    /// Registers a process; it is activated once at simulation start (its
    /// [`Process::init`] runs, then a first activation at time zero).
    pub fn register(&mut self, process: impl Process + 'static) -> ProcId {
        let id = ProcId(self.processes.len() as u32);
        self.processes.push(Box::new(process));
        let seq = self.next_seq();
        self.queue.push(Reverse((SimTime::ZERO, seq, id.0)));
        id
    }

    /// Makes `proc` sensitive to value changes of `sig`.
    pub fn sensitize<T>(&mut self, proc: ProcId, sig: Sig<T>) {
        let w = &mut self.watchers[sig.index as usize];
        if !w.contains(&proc) {
            w.push(proc);
        }
    }

    /// Adds a free-running clock signal: rises at `t = 0`, toggles every
    /// half `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or below 2 fs.
    pub fn add_clock(&mut self, period: SimTime) -> Sig<bool> {
        let half = SimTime::fs(period.as_fs() / 2);
        assert!(half > SimTime::ZERO, "clock period too small");
        let sig = self.signal(false);
        struct ClockProc {
            sig: Sig<bool>,
            half: SimTime,
        }
        impl Process for ClockProc {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                let v = ctx.read(self.sig);
                ctx.write(self.sig, !v);
                ctx.notify_self_after(self.half);
            }
        }
        self.register(ClockProc { sig, half });
        sig
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Reads a signal's current value from outside any process.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn peek<T: Clone + PartialEq + 'static>(&self, sig: Sig<T>) -> T {
        self.signals[sig.index as usize]
            .as_any()
            .downcast_ref::<SignalState<T>>()
            .expect("signal type mismatch")
            .current
            .clone()
    }

    /// Forces a signal value from outside any process (testbench pokes).
    /// The change wakes sensitive processes at the next delta cycle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn poke<T: Clone + PartialEq + 'static>(&mut self, sig: Sig<T>, value: T) {
        let state = self.signals[sig.index as usize]
            .as_any_mut()
            .downcast_mut::<SignalState<T>>()
            .expect("signal type mismatch");
        state.pending = Some(value);
        // Schedule an immediate nop event so the update phase runs even if
        // the queue was empty; wake-ups happen through the normal path.
        let seq = self.next_seq();
        self.queue.push(Reverse((self.now, seq, u32::MAX)));
        self.apply_update_for(sig.index);
    }

    fn apply_update_for(&mut self, index: u32) {
        if self.signals[index as usize].apply_pending() {
            let watchers = self.watchers[index as usize].clone();
            let now = self.now;
            for p in watchers {
                let seq = self.next_seq();
                self.queue.push(Reverse((now, seq, p.0)));
            }
            self.record_trace(index);
        }
    }

    fn record_trace(&mut self, index: u32) {
        for &(sig, channel, kind) in &self.traced {
            if sig != index {
                continue;
            }
            let value = match kind {
                TracedKind::Real => TraceValue::Real(
                    self.signals[index as usize]
                        .as_any()
                        .downcast_ref::<SignalState<f64>>()
                        .expect("trace() checked the type")
                        .current,
                ),
                TracedKind::Bit => TraceValue::Bit(
                    self.signals[index as usize]
                        .as_any()
                        .downcast_ref::<SignalState<bool>>()
                        .expect("trace_bit() checked the type")
                        .current,
                ),
            };
            self.trace.events.push(TraceEvent {
                time: self.now,
                channel,
                value,
            });
        }
    }

    /// Registers a real-valued signal for waveform tracing (the SystemC
    /// `sc_trace` analogue); the initial value is recorded immediately.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn trace(&mut self, sig: Sig<f64>, name: impl Into<String>) {
        let channel = self.trace.names.len();
        self.trace.names.push(name.into());
        let current = self.peek(sig);
        self.traced.push((sig.index, channel, TracedKind::Real));
        self.trace.events.push(TraceEvent {
            time: self.now,
            channel,
            value: TraceValue::Real(current),
        });
    }

    /// Registers a bit signal for waveform tracing.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this kernel.
    pub fn trace_bit(&mut self, sig: Sig<bool>, name: impl Into<String>) {
        let channel = self.trace.names.len();
        self.trace.names.push(name.into());
        let current = self.peek(sig);
        self.traced.push((sig.index, channel, TracedKind::Bit));
        self.trace.events.push(TraceEvent {
            time: self.now,
            channel,
            value: TraceValue::Bit(current),
        });
    }

    /// The waveform recording so far.
    pub fn waveforms(&self) -> &Trace {
        &self.trace
    }

    /// Downcasts a registered process back to its concrete type (for
    /// post-run inspection of testbench state).
    pub fn process_ref<P: Process>(&self, id: ProcId) -> Option<&P> {
        let p: &dyn Process = &*self.processes[id.0 as usize];
        (p as &dyn std::any::Any).downcast_ref::<P>()
    }

    /// Mutable variant of [`Kernel::process_ref`].
    pub fn process_mut<P: Process>(&mut self, id: ProcId) -> Option<&mut P> {
        let p: &mut dyn Process = &mut *self.processes[id.0 as usize];
        (p as &mut dyn std::any::Any).downcast_mut::<P>()
    }

    /// Total process activations so far (performance counter).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total delta cycles executed so far (performance counter).
    pub fn delta_cycles(&self) -> u64 {
        self.delta_cycles
    }

    /// Sets the delta-cycle limit per time point (default 10 000).
    pub fn set_max_delta(&mut self, limit: usize) {
        self.max_delta = limit;
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Runs until the queue is exhausted or simulated time would exceed
    /// `until`; events exactly at `until` are processed.
    ///
    /// # Errors
    ///
    /// [`RunError::DeltaOverflow`] when a zero-delay loop keeps scheduling
    /// activations without advancing time.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), RunError> {
        // All instrumentation happens at this boundary: the dispatch loop
        // below runs exactly as if no collector existed.
        let timer = self.obs.enabled().then(Instant::now);
        let result = self.run_events(until);
        if let Some(start) = timer {
            self.obs.time("de.run_until", start.elapsed().as_secs_f64());
            let (activations, delta_cycles) = (self.activations, self.delta_cycles);
            self.obs_activations
                .flush(&self.obs, "de.activations", activations);
            self.obs_delta_cycles
                .flush(&self.obs, "de.delta_cycles", delta_cycles);
        }
        result
    }

    fn run_events(&mut self, until: SimTime) -> Result<(), RunError> {
        if !self.started {
            self.started = true;
            // init phase: run every process's init with a context.
            for i in 0..self.processes.len() {
                let mut dirty = Vec::new();
                let mut timed = Vec::new();
                let mut process = std::mem::replace(&mut self.processes[i], Box::new(NopProcess));
                {
                    let mut ctx = ProcCtx {
                        signals: &mut self.signals,
                        now: self.now,
                        self_id: ProcId(i as u32),
                        dirty: &mut dirty,
                        timed: &mut timed,
                    };
                    process.init(&mut ctx);
                }
                self.processes[i] = process;
                self.commit(dirty, timed);
            }
        }

        let mut deltas_here = 0usize;
        let mut last_time = self.now;
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t > until {
                break;
            }
            if t > last_time {
                deltas_here = 0;
                last_time = t;
            } else {
                deltas_here += 1;
                if deltas_here > self.max_delta {
                    return Err(RunError::DeltaOverflow {
                        at: t,
                        limit: self.max_delta,
                    });
                }
            }
            self.now = t;
            self.delta_cycles += 1;

            // Evaluate phase: run every process scheduled at exactly t
            // (dedup multiple wakeups of the same process in this delta).
            let mut runnable: Vec<u32> = Vec::new();
            while let Some(&Reverse((qt, _, p))) = self.queue.peek() {
                if qt != t {
                    break;
                }
                self.queue.pop();
                if p != u32::MAX && !runnable.contains(&p) {
                    runnable.push(p);
                }
            }
            let mut dirty = Vec::new();
            let mut timed = Vec::new();
            for p in runnable {
                self.activations += 1;
                let mut process =
                    std::mem::replace(&mut self.processes[p as usize], Box::new(NopProcess));
                {
                    let mut ctx = ProcCtx {
                        signals: &mut self.signals,
                        now: self.now,
                        self_id: ProcId(p),
                        dirty: &mut dirty,
                        timed: &mut timed,
                    };
                    process.activate(&mut ctx);
                }
                self.processes[p as usize] = process;
            }
            self.commit(dirty, timed);
        }
        if self.now < until {
            self.now = until;
        }
        Ok(())
    }

    /// Update phase: apply writes, wake watchers, queue timed events.
    fn commit(&mut self, dirty: Vec<u32>, timed: Vec<(SimTime, ProcId)>) {
        for index in dirty {
            self.apply_update_for(index);
        }
        for (t, p) in timed {
            let seq = self.next_seq();
            self.queue.push(Reverse((t, seq, p.0)));
        }
    }
}

struct NopProcess;

impl Process for NopProcess {
    fn activate(&mut self, _ctx: &mut ProcCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Relay {
        from: Sig<i64>,
        to: Sig<i64>,
    }

    impl Process for Relay {
        fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
            let v = ctx.read(self.from);
            ctx.write(self.to, v + 1);
        }
    }

    #[test]
    fn delta_cycle_propagation_chain() {
        // a → b → c, each stage adds one; poking a ripples through deltas
        // without time advancing.
        let mut k = Kernel::new();
        let a = k.signal(0_i64);
        let b = k.signal(0_i64);
        let c = k.signal(0_i64);
        let p1 = k.register(Relay { from: a, to: b });
        let p2 = k.register(Relay { from: b, to: c });
        k.sensitize(p1, a);
        k.sensitize(p2, b);
        k.run_until(SimTime::ns(1)).unwrap();
        k.poke(a, 10);
        k.run_until(SimTime::ns(2)).unwrap();
        assert_eq!(k.peek(b), 11);
        assert_eq!(k.peek(c), 12);
        assert_eq!(k.now(), SimTime::ns(2));
    }

    #[test]
    fn writes_are_not_visible_until_update_phase() {
        // Two processes swap values through signals; with proper
        // evaluate/update separation both read the OLD values.
        struct Swapper {
            mine: Sig<i64>,
            theirs: Sig<i64>,
        }
        impl Process for Swapper {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                let v = ctx.read(self.theirs);
                ctx.write(self.mine, v);
            }
        }
        let mut k = Kernel::new();
        let x = k.signal(1_i64);
        let y = k.signal(2_i64);
        let px = k.register(Swapper { mine: x, theirs: y });
        let py = k.register(Swapper { mine: y, theirs: x });
        // Activated once at start; both read pre-update values.
        let _ = (px, py);
        k.run_until(SimTime::ns(1)).unwrap();
        assert_eq!(k.peek(x), 2);
        assert_eq!(k.peek(y), 1);
    }

    #[test]
    fn timed_notifications_order() {
        struct Ticker {
            out: Sig<i64>,
            period: SimTime,
        }
        impl Process for Ticker {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                let v = ctx.read(self.out);
                ctx.write(self.out, v + 1);
                ctx.notify_self_after(self.period);
            }
        }
        let mut k = Kernel::new();
        let out = k.signal(0_i64);
        k.register(Ticker {
            out,
            period: SimTime::ns(10),
        });
        k.run_until(SimTime::ns(35)).unwrap();
        // Activations at 0, 10, 20, 30.
        assert_eq!(k.peek(out), 4);
        assert_eq!(k.activations(), 4);
        // Continuing resumes where it stopped.
        k.run_until(SimTime::ns(65)).unwrap();
        assert_eq!(k.peek(out), 7);
    }

    #[test]
    fn identical_value_writes_do_not_wake() {
        struct Echo {
            inp: Sig<i64>,
            count: Sig<i64>,
        }
        impl Process for Echo {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                let c = ctx.read(self.count);
                ctx.write(self.count, c + 1);
                let _ = ctx.read(self.inp);
            }
        }
        let mut k = Kernel::new();
        let inp = k.signal(5_i64);
        let count = k.signal(0_i64);
        let p = k.register(Echo { inp, count });
        k.sensitize(p, inp);
        k.run_until(SimTime::ns(1)).unwrap();
        let base = k.peek(count);
        k.poke(inp, 5); // same value — no event
        k.run_until(SimTime::ns(2)).unwrap();
        assert_eq!(k.peek(count), base);
        k.poke(inp, 6);
        k.run_until(SimTime::ns(3)).unwrap();
        assert_eq!(k.peek(count), base + 1);
    }

    #[test]
    fn zero_delay_oscillation_detected() {
        struct Osc {
            sig: Sig<bool>,
        }
        impl Process for Osc {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                let v = ctx.read(self.sig);
                ctx.write(self.sig, !v);
            }
        }
        let mut k = Kernel::new();
        let sig = k.signal(false);
        let p = k.register(Osc { sig });
        k.sensitize(p, sig);
        k.set_max_delta(100);
        let err = k.run_until(SimTime::ns(1)).unwrap_err();
        assert!(matches!(err, RunError::DeltaOverflow { limit: 100, .. }));
        assert!(err.to_string().contains("delta-cycle overflow"));
    }

    #[test]
    fn clock_counts_and_counters() {
        let mut k = Kernel::new();
        let clk = k.add_clock(SimTime::ns(10));
        struct EdgeCounter {
            clk: Sig<bool>,
            rising: Sig<i64>,
        }
        impl Process for EdgeCounter {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                if ctx.read(self.clk) {
                    let v = ctx.read(self.rising);
                    ctx.write(self.rising, v + 1);
                }
            }
        }
        let rising = k.signal(0_i64);
        let p = k.register(EdgeCounter { clk, rising });
        k.sensitize(p, clk);
        k.run_until(SimTime::ns(95)).unwrap();
        assert_eq!(k.peek(rising), 10);
        assert!(k.delta_cycles() > 0);
    }

    #[test]
    fn tracing_records_value_changes_as_vcd() {
        let mut k = Kernel::new();
        let clk = k.add_clock(SimTime::ns(20));
        let ramp = k.signal(0.0_f64);
        struct Ramper {
            clk: Sig<bool>,
            out: Sig<f64>,
        }
        impl Process for Ramper {
            fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
                if ctx.read(self.clk) {
                    let v = ctx.read(self.out);
                    ctx.write(self.out, v + 0.25);
                }
            }
        }
        let p = k.register(Ramper { clk, out: ramp });
        k.sensitize(p, clk);
        k.trace(ramp, "ramp");
        k.trace_bit(clk, "clk");
        k.run_until(SimTime::ns(95)).unwrap();

        let trace = k.waveforms();
        assert_eq!(trace.channel_names(), &["ramp", "clk"]);
        // Clock toggles every 10 ns: ~10 events (plus the initial sample).
        assert!(trace.channel(1).count() >= 10);
        // Ramp rises by 0.25 on each rising edge.
        let ramp_values: Vec<f64> = trace
            .channel(0)
            .filter_map(|e| match e.value {
                TraceValue::Real(v) => Some(v),
                TraceValue::Bit(_) => None,
            })
            .collect();
        assert!(ramp_values.windows(2).all(|w| w[1] > w[0]), "monotone ramp");
        let vcd = trace.to_vcd();
        assert!(vcd.contains("$var real 64 ! ramp $end"));
        assert!(vcd.contains("$var wire 1 \" clk $end"));
    }

    #[test]
    fn run_until_advances_time_without_events() {
        let mut k = Kernel::new();
        k.run_until(SimTime::us(3)).unwrap();
        assert_eq!(k.now(), SimTime::us(3));
    }
}
