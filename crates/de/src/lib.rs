//! A discrete-event simulation kernel modeled after the SystemC (IEEE
//! 1666) scheduler — the "SystemC-DE" substrate of the paper's
//! experiments.
//!
//! The kernel implements the classic evaluate/update cycle:
//!
//! 1. all processes activated at the current time run (*evaluate* phase);
//!    signal writes are buffered, timed notifications are queued;
//! 2. buffered writes are applied (*update* phase); every signal whose
//!    value actually changed wakes its statically sensitive processes;
//! 3. if anything woke up, a new *delta cycle* runs at the same time,
//!    otherwise simulated time advances to the next queued event.
//!
//! Processes are plain structs implementing [`Process`]; they communicate
//! through typed [`Sig`] handles into kernel-owned signal storage, so user
//! code never needs interior mutability.
//!
//! # Example
//!
//! ```
//! use amsvp_de::{Kernel, Process, ProcCtx, Sig, SimTime};
//!
//! struct Counter {
//!     clk: Sig<bool>,
//!     count: Sig<i64>,
//! }
//!
//! impl Process for Counter {
//!     fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
//!         if ctx.read(self.clk) {
//!             let c = ctx.read(self.count);
//!             ctx.write(self.count, c + 1);
//!         }
//!     }
//! }
//!
//! let mut k = Kernel::new();
//! let clk = k.add_clock(SimTime::ns(10));
//! let count = k.signal(0_i64);
//! let p = k.register(Counter { clk, count });
//! k.sensitize(p, clk);
//! k.run_until(SimTime::ns(95)).unwrap();
//! assert_eq!(k.peek(count), 10); // rising edges at 0,10,...,90
//! ```

mod kernel;
mod signal;
mod time;
pub mod trace;

pub use kernel::{Kernel, ProcCtx, ProcId, Process, RunError};
pub use signal::Sig;
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, TraceValue};
