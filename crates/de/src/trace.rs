//! Waveform tracing to Value Change Dump (VCD) files — the kernel-side
//! equivalent of SystemC's `sc_trace`.
//!
//! Signals registered with [`Kernel::trace`](crate::Kernel::trace) are
//! sampled after every update phase; value changes are recorded with their
//! timestamp and can be serialized to the standard VCD format for viewing
//! in GTKWave or any other waveform viewer.

use std::fmt::Write as _;

use crate::SimTime;

/// A traced value sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceValue {
    /// A real-valued signal (`sc_signal<double>` analogue).
    Real(f64),
    /// A single-bit signal.
    Bit(bool),
}

/// One recorded change of one traced signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When the change became visible (update phase time).
    pub time: SimTime,
    /// Index of the traced signal (registration order).
    pub channel: usize,
    /// The new value.
    pub value: TraceValue,
}

/// An in-memory waveform recording.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) names: Vec<String>,
    pub(crate) events: Vec<TraceEvent>,
}

impl Trace {
    /// Names of the traced channels, in registration order.
    pub fn channel_names(&self) -> &[String] {
        &self.names
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The recorded events of one channel.
    pub fn channel(&self, index: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.channel == index)
    }

    /// Serializes the recording as a VCD document (timescale 1 fs).
    ///
    /// Real signals are emitted as VCD `real` variables, bit signals as
    /// 1-bit wires.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1fs $end");
        let _ = writeln!(out, "$scope module amsvp $end");
        // VCD id codes: printable ASCII starting at '!'.
        let id = |i: usize| -> char { (b'!' + i as u8) as char };
        let kinds: Vec<Option<TraceValue>> = (0..self.names.len())
            .map(|i| self.channel(i).next().map(|e| e.value))
            .collect();
        for (i, name) in self.names.iter().enumerate() {
            match kinds[i] {
                Some(TraceValue::Bit(_)) => {
                    let _ = writeln!(out, "$var wire 1 {} {} $end", id(i), name);
                }
                // Real by default (also for channels that never changed).
                _ => {
                    let _ = writeln!(out, "$var real 64 {} {} $end", id(i), name);
                }
            }
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut last_time: Option<SimTime> = None;
        for e in &self.events {
            if last_time != Some(e.time) {
                let _ = writeln!(out, "#{}", e.time.as_fs());
                last_time = Some(e.time);
            }
            match e.value {
                TraceValue::Real(v) => {
                    let _ = writeln!(out, "r{v:e} {}", id(e.channel));
                }
                TraceValue::Bit(b) => {
                    let _ = writeln!(out, "{}{}", u8::from(b), id(e.channel));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            names: vec!["vout".into(), "clk".into()],
            events: vec![
                TraceEvent {
                    time: SimTime::ZERO,
                    channel: 1,
                    value: TraceValue::Bit(true),
                },
                TraceEvent {
                    time: SimTime::ns(10),
                    channel: 0,
                    value: TraceValue::Real(0.5),
                },
                TraceEvent {
                    time: SimTime::ns(10),
                    channel: 1,
                    value: TraceValue::Bit(false),
                },
            ],
        }
    }

    #[test]
    fn channel_filtering() {
        let t = sample_trace();
        assert_eq!(t.channel_names(), &["vout", "clk"]);
        assert_eq!(t.channel(0).count(), 1);
        assert_eq!(t.channel(1).count(), 2);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn vcd_structure() {
        let vcd = sample_trace().to_vcd();
        assert!(vcd.starts_with("$timescale 1fs $end"));
        assert!(vcd.contains("$var real 64 ! vout $end"));
        assert!(vcd.contains("$var wire 1 \" clk $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Timestamps deduplicated: #0 once, #10000000 once.
        assert_eq!(vcd.matches("#0\n").count(), 1);
        assert_eq!(vcd.matches("#10000000\n").count(), 1);
        assert!(vcd.contains("r5e-1 !"));
        assert!(vcd.contains("1\""));
        assert!(vcd.contains("0\""));
    }
}
