use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulated time with femtosecond resolution.
///
/// A `u64` femtosecond counter covers ~5 hours of simulated time, far
/// beyond the paper's longest run (10 s).
///
/// # Example
///
/// ```
/// use amsvp_de::SimTime;
///
/// let t = SimTime::ns(50) + SimTime::ps(500);
/// assert_eq!(t.as_fs(), 50_500_000);
/// assert_eq!(SimTime::from_seconds(50e-9), SimTime::ns(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from femtoseconds.
    pub const fn fs(v: u64) -> SimTime {
        SimTime(v)
    }

    /// Constructs from picoseconds.
    pub const fn ps(v: u64) -> SimTime {
        SimTime(v * 1_000)
    }

    /// Constructs from nanoseconds.
    pub const fn ns(v: u64) -> SimTime {
        SimTime(v * 1_000_000)
    }

    /// Constructs from microseconds.
    pub const fn us(v: u64) -> SimTime {
        SimTime(v * 1_000_000_000)
    }

    /// Constructs from milliseconds.
    pub const fn ms(v: u64) -> SimTime {
        SimTime(v * 1_000_000_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn sec(v: u64) -> SimTime {
        SimTime(v * 1_000_000_000_000_000)
    }

    /// Constructs from a floating-point second count (rounded to the
    /// nearest femtosecond).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative, non-finite, or too large to
    /// represent.
    pub fn from_seconds(seconds: f64) -> SimTime {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid time {seconds}"
        );
        let fs = seconds * 1e15;
        assert!(fs <= u64::MAX as f64, "time {seconds} s overflows SimTime");
        SimTime(fs.round() as u64)
    }

    /// Raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Value in seconds (lossy for very large times).
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs == 0 {
            return write!(f, "0 s");
        }
        let units = [
            (1_000_000_000_000_000, "s"),
            (1_000_000_000_000, "ms"),
            (1_000_000_000, "us"),
            (1_000_000, "ns"),
            (1_000, "ps"),
            (1, "fs"),
        ];
        for (scale, name) in units {
            if fs.is_multiple_of(scale) {
                return write!(f, "{} {name}", fs / scale);
            }
        }
        unreachable!("1 fs divides everything")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimTime::ps(1).as_fs(), 1_000);
        assert_eq!(SimTime::ns(1).as_fs(), 1_000_000);
        assert_eq!(SimTime::us(1).as_fs(), 1_000_000_000);
        assert_eq!(SimTime::ms(1).as_fs(), 1_000_000_000_000);
        assert_eq!(SimTime::sec(1).as_fs(), 1_000_000_000_000_000);
    }

    #[test]
    fn from_seconds_round_trips() {
        assert_eq!(SimTime::from_seconds(50e-9), SimTime::ns(50));
        assert_eq!(SimTime::from_seconds(0.0), SimTime::ZERO);
        let t = SimTime::from_seconds(1.5e-3);
        assert!((t.as_seconds() - 1.5e-3).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_seconds(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::ns(10);
        let b = SimTime::ns(3);
        assert_eq!(a + b, SimTime::ns(13));
        assert_eq!(a - b, SimTime::ns(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.checked_add(SimTime::fs(1)), None);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::ns(13));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ns(1) < SimTime::us(1));
        assert!(SimTime::ZERO < SimTime::fs(1));
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::ns(50).to_string(), "50 ns");
        assert_eq!(SimTime::fs(1_500).to_string(), "1500 fs"); // not whole ps
        assert_eq!(SimTime::sec(2).to_string(), "2 s");
    }
}
