use std::any::Any;
use std::marker::PhantomData;

/// Typed handle to a kernel-owned signal.
///
/// `Sig` is a cheap `Copy` index; all storage lives in the
/// [`Kernel`](crate::Kernel). Processes keep the handles they need and
/// read/write through [`ProcCtx`](crate::ProcCtx).
pub struct Sig<T> {
    pub(crate) index: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Sig<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Sig<T> {}

impl<T> std::fmt::Debug for Sig<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sig#{}", self.index)
    }
}

impl<T> PartialEq for Sig<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for Sig<T> {}

/// Type-erased signal storage with SystemC update semantics: writes are
/// buffered and only become visible in the update phase.
pub(crate) trait AnySignal: Any {
    /// Applies a buffered write; returns `true` when the visible value
    /// actually changed (which wakes sensitive processes).
    fn apply_pending(&mut self) -> bool;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

pub(crate) struct SignalState<T> {
    pub current: T,
    pub pending: Option<T>,
}

impl<T: Clone + PartialEq + 'static> AnySignal for SignalState<T> {
    fn apply_pending(&mut self) -> bool {
        match self.pending.take() {
            Some(v) if v != self.current => {
                self.current = v;
                true
            }
            _ => false,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_is_copy_and_comparable() {
        let a: Sig<f64> = Sig {
            index: 3,
            _marker: PhantomData,
        };
        let b = a;
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "Sig#3");
    }

    #[test]
    fn pending_applies_only_on_change() {
        let mut s = SignalState {
            current: 1.0_f64,
            pending: None,
        };
        assert!(!s.apply_pending(), "no pending write");
        s.pending = Some(1.0);
        assert!(!s.apply_pending(), "same value is not an event");
        s.pending = Some(2.0);
        assert!(s.apply_pending());
        assert_eq!(s.current, 2.0);
    }
}
