//! Whole-platform assembly and execution (the Table III experiment).

use std::cell::RefCell;
use std::rc::Rc;

use amsim::cosim::CosimHandle;
use amsvp_core::circuits::{SquareWave, Stimulus};
use amsvp_core::SignalFlowModel;
use de::{Kernel, ProcCtx, Process, SimTime};
use eln::{ElnSolver, NodeId, SourceId};

use crate::analog::{build_tdf_cluster, CompiledAnalog, CosimAnalog, ElnAnalog, TdfClusterProcess};
use crate::bus::{new_bridge, PlatformBus, SharedUart};
use crate::cpu::CpuCore;

/// Platform parameters shared by both builds, generic over the analog
/// stimulus (default: the paper's square wave) — so a fleet can hand
/// every device its own seeded waveform without a parallel config type.
#[derive(Debug, Clone)]
pub struct PlatformConfig<S: Stimulus = SquareWave> {
    /// CPU clock period (default 20 ns — 50 MHz).
    pub cpu_period: SimTime,
    /// Stimulus applied to the analog component (default: the paper's
    /// 1 ms square wave).
    pub stimulus: S,
    /// Firmware image, loaded at address 0.
    pub firmware: Vec<u32>,
}

impl PlatformConfig {
    /// Config with paper defaults and the given firmware.
    pub fn new(firmware: Vec<u32>) -> Self {
        PlatformConfig {
            cpu_period: SimTime::ns(20),
            stimulus: SquareWave::paper(),
            firmware,
        }
    }
}

impl<S: Stimulus> PlatformConfig<S> {
    /// Config with paper defaults, the given firmware, and a custom
    /// stimulus.
    pub fn with_stimulus(firmware: Vec<u32>, stimulus: S) -> Self {
        PlatformConfig {
            cpu_period: SimTime::ns(20),
            stimulus,
            firmware,
        }
    }
}

/// How the analog component is integrated (one row of Table III).
// Constructed once per platform run, so the size spread between the ELN
// variant (solver + factors) and the others is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum AnalogIntegration {
    /// Abstracted model as a plain DE process ("SC-DE").
    CompiledDe(SignalFlowModel),
    /// Abstracted model inside a TDF cluster ("SC-AMS/TDF").
    Tdf(SignalFlowModel),
    /// Hand-built electrical linear network ("SC-AMS/ELN").
    Eln {
        /// The assembled MNA solver.
        solver: ElnSolver,
        /// Sources driven by the stimulus.
        sources: Vec<SourceId>,
        /// Observed output node.
        output: NodeId,
    },
    /// Conservative Verilog-AMS solver on its own thread, synchronized
    /// every analog step ("Verilog-AMS co-simulation").
    Cosim {
        /// Running solver handle.
        handle: CosimHandle,
        /// Number of analog inputs (all driven with the stimulus).
        inputs: usize,
        /// Analog step in seconds.
        dt: f64,
    },
}

/// What a platform run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Bytes the firmware transmitted over the UART.
    pub uart: Vec<u8>,
    /// Instructions the CPU retired.
    pub instructions: u64,
    /// Analog steps taken.
    pub analog_samples: u32,
    /// Final analog output sample (volts).
    pub final_output: f64,
    /// DE-kernel activations (0 for the fast build).
    pub kernel_activations: u64,
}

/// The CPU as a DE process: one instruction per clock activation.
struct CpuProcess {
    core: CpuCore,
    bus: PlatformBus,
    period: SimTime,
}

impl Process for CpuProcess {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        if !self.core.halted() {
            self.core.step(&mut self.bus);
            ctx.notify_self_after(self.period);
        }
    }
}

/// Runs the discrete-event platform for `sim_time` with the chosen analog
/// integration.
///
/// # Panics
///
/// Panics if the kernel reports a zero-delay loop (impossible with this
/// fixed process set) or an analog solver fails mid-run.
pub fn run_de_platform<S>(
    integration: AnalogIntegration,
    config: &PlatformConfig<S>,
    sim_time: SimTime,
) -> PlatformReport
where
    S: Stimulus + Clone + 'static,
{
    let uart: SharedUart = Rc::new(RefCell::new(Vec::new()));
    let bridge = new_bridge();
    let mut kernel = Kernel::new();

    let mut bus = PlatformBus::new(uart.clone(), bridge.clone());
    bus.load_words(0, &config.firmware);
    let cpu_id = kernel.register(CpuProcess {
        core: CpuCore::new(),
        bus,
        period: config.cpu_period,
    });

    match integration {
        AnalogIntegration::CompiledDe(model) => {
            kernel.register(CompiledAnalog::new(
                model,
                bridge.clone(),
                config.stimulus.clone(),
            ));
        }
        AnalogIntegration::Tdf(model) => {
            let exec = build_tdf_cluster(model, bridge.clone(), config.stimulus.clone())
                .expect("fixed pipeline elaborates");
            kernel.register(TdfClusterProcess::new(exec));
        }
        AnalogIntegration::Eln {
            solver,
            sources,
            output,
        } => {
            kernel.register(ElnAnalog::new(
                solver,
                sources,
                output,
                bridge.clone(),
                config.stimulus.clone(),
            ));
        }
        AnalogIntegration::Cosim { handle, inputs, dt } => {
            kernel.register(CosimAnalog::new(
                handle,
                inputs,
                dt,
                bridge.clone(),
                config.stimulus.clone(),
            ));
        }
    }

    kernel
        .run_until(sim_time)
        .expect("platform has no delta loops");

    let instructions = kernel
        .process_ref::<CpuProcess>(cpu_id)
        .expect("cpu process type")
        .core
        .retired();
    let b = bridge.borrow();
    let uart_bytes = uart.borrow().clone();
    PlatformReport {
        uart: uart_bytes,
        instructions,
        analog_samples: b.samples,
        final_output: b.aout,
        kernel_activations: kernel.activations(),
    }
}

/// A fixed-step analog engine the fast (event-queue-free) platform build
/// can interleave with the CPU: the abstracted [`SignalFlowModel`] or a
/// conservative [`amsim::Instance`] over a shared compiled model.
///
/// The fleet runner batches the [`amsim::Instance`] form of this loop
/// over many devices ([`crate::run_fleet`]); per the lane≡scalar batch
/// contract, a one-device fleet reproduces [`run_fast_platform`] on the
/// instance engine bit for bit.
pub trait FastAnalog {
    /// Nominal analog step in seconds.
    fn dt(&self) -> f64;
    /// Number of analog inputs (all driven with the stimulus + DAC sum).
    fn input_count(&self) -> usize;
    /// Advances one nominal step and returns output 0.
    ///
    /// # Panics
    ///
    /// Implementations over fallible solvers panic on solver failure —
    /// the fast build, like the DE build, treats an analog fault as fatal
    /// (the fleet runner isolates faults per device instead).
    fn step_sample(&mut self, inputs: &[f64]) -> f64;
}

impl FastAnalog for SignalFlowModel {
    fn dt(&self) -> f64 {
        SignalFlowModel::dt(self)
    }

    fn input_count(&self) -> usize {
        self.input_names().len()
    }

    fn step_sample(&mut self, inputs: &[f64]) -> f64 {
        self.step(inputs);
        self.output(0)
    }
}

impl FastAnalog for amsim::Instance {
    fn dt(&self) -> f64 {
        amsim::Instance::dt(self)
    }

    fn input_count(&self) -> usize {
        self.input_names().len()
    }

    fn step_sample(&mut self, inputs: &[f64]) -> f64 {
        self.step(inputs);
        self.output(0)
    }
}

/// Runs the "pure C++" platform: a single loop interleaving CPU
/// instructions and compiled analog steps, with no event queue.
///
/// `sim_seconds` is the simulated duration; the CPU executes
/// `dt / cpu_period` instructions per analog step.
pub fn run_fast_platform<A, S>(
    mut model: A,
    config: &PlatformConfig<S>,
    sim_seconds: f64,
) -> PlatformReport
where
    A: FastAnalog,
    S: Stimulus,
{
    let uart: SharedUart = Rc::new(RefCell::new(Vec::new()));
    let bridge = new_bridge();
    let mut bus = PlatformBus::new(uart.clone(), bridge.clone());
    bus.load_words(0, &config.firmware);
    let mut cpu = CpuCore::new();

    let dt = model.dt();
    // Fractional cycle accounting keeps the CPU at exactly its clock rate
    // even when the analog step is not an integer multiple of the cycle.
    let cycles_per_analog = dt / config.cpu_period.as_seconds();
    let steps = (sim_seconds / dt).round() as usize;
    let n_inputs = model.input_count();
    let mut inputs = vec![0.0; n_inputs];
    let mut cycle_debt = 0.0_f64;

    for k in 0..steps {
        cycle_debt += cycles_per_analog;
        while cycle_debt >= 1.0 {
            cycle_debt -= 1.0;
            if cpu.halted() {
                break;
            }
            cpu.step(&mut bus);
        }
        let t = k as f64 * dt;
        let u = config.stimulus.value(t) + bridge.borrow().dac;
        inputs.iter_mut().for_each(|v| *v = u);
        let y = model.step_sample(&inputs);
        {
            let mut b = bridge.borrow_mut();
            b.aout = y;
            b.samples = b.samples.wrapping_add(1);
        }
    }

    let b = bridge.borrow();
    let uart_bytes = uart.borrow().clone();
    PlatformReport {
        uart: uart_bytes,
        instructions: cpu.retired(),
        analog_samples: b.samples,
        final_output: b.aout,
        kernel_activations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analog::rc_ladder_eln;
    use crate::firmware::monitor_firmware;
    use amsvp_core::{circuits, Abstraction};
    use eln::{Method, Transient};
    use vams_parser::parse_module;

    const DT: f64 = 50e-9;

    fn rc1_model() -> SignalFlowModel {
        let m = parse_module(&circuits::rc_ladder(1)).unwrap();
        Abstraction::new(&m).dt(DT).build().unwrap()
    }

    /// Expected UART traffic: with a 1 ms square wave and τ = 125 µs, the
    /// RC output crosses 0.5 V once per half period: '1' then '0', twice
    /// per period.
    fn check_report(r: &PlatformReport, sim_ms: f64) {
        let expected_crossings = (2.0 * sim_ms).round() as usize;
        assert!(
            r.uart.len() >= expected_crossings.saturating_sub(1)
                && r.uart.len() <= expected_crossings + 1,
            "uart {:?} vs expected ~{expected_crossings}",
            r.uart
        );
        // Alternating '1'/'0' starting with '1'.
        for (i, b) in r.uart.iter().enumerate() {
            let want = if i % 2 == 0 { b'1' } else { b'0' };
            assert_eq!(*b, want, "uart byte {i}");
        }
        assert!(r.instructions > 1000, "CPU must have run");
        assert!(r.analog_samples > 0);
    }

    #[test]
    fn fast_platform_monitors_crossings() {
        let config = PlatformConfig::new(monitor_firmware());
        let report = run_fast_platform(rc1_model(), &config, 2e-3);
        check_report(&report, 2.0);
        assert_eq!(report.kernel_activations, 0);
        // 2 ms at 50 ns per analog step.
        assert_eq!(report.analog_samples, 40_000);
    }

    #[test]
    fn de_platform_with_compiled_model_matches_fast() {
        let config = PlatformConfig::new(monitor_firmware());
        let fast = run_fast_platform(rc1_model(), &config, 2e-3);
        // Stop half an analog step early: kernel events at the end time
        // are inclusive, the fast loop's are not.
        let de = run_de_platform(
            AnalogIntegration::CompiledDe(rc1_model()),
            &config,
            SimTime::from_seconds(2e-3 - DT / 2.0),
        );
        check_report(&de, 2.0);
        assert!(de.kernel_activations > 0);
        // Same analog trajectory in both builds.
        assert!(
            (de.final_output - fast.final_output).abs() < 1e-9,
            "{} vs {}",
            de.final_output,
            fast.final_output
        );
        assert_eq!(de.uart, fast.uart);
    }

    #[test]
    fn de_platform_with_tdf_cluster() {
        let config = PlatformConfig::new(monitor_firmware());
        let report = run_de_platform(
            AnalogIntegration::Tdf(rc1_model()),
            &config,
            SimTime::from_seconds(2e-3),
        );
        check_report(&report, 2.0);
    }

    #[test]
    fn de_platform_with_eln() {
        let (net, src, out) = rc_ladder_eln(1);
        let solver = Transient::new(&net)
            .dt(DT)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        let config = PlatformConfig::new(monitor_firmware());
        let report = run_de_platform(
            AnalogIntegration::Eln {
                solver,
                sources: vec![src],
                output: out,
            },
            &config,
            SimTime::from_seconds(2e-3),
        );
        check_report(&report, 2.0);
    }

    #[test]
    fn de_platform_with_cosim() {
        // Coarser analog step keeps the reference solver affordable here.
        let dt = 1e-6;
        let m = parse_module(&circuits::rc_ladder(1)).unwrap();
        let sim = amsim::Simulation::new(&m)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();
        let handle = CosimHandle::spawn(sim, 1);
        let config = PlatformConfig::new(monitor_firmware());
        let report = run_de_platform(
            AnalogIntegration::Cosim {
                handle,
                inputs: 1,
                dt,
            },
            &config,
            SimTime::from_seconds(2e-3),
        );
        check_report(&report, 2.0);
    }

    #[test]
    fn firmware_prints_string_over_uart() {
        // Data-driven transmit loop: walks a NUL-terminated string through
        // a subroutine, exercising jal/jr, byte loads, and the UART.
        let firmware = crate::asm::assemble(
            "li $s1, 0x10000000
             la $s0, text
          next:
             lbu $a0, 0($s0)
             beq $a0, $zero, done
             jal putc
             addiu $s0, $s0, 1
             b next
          putc:
             sw $a0, 0($s1)
             jr $ra
          done:
             break
          text:
             .word 0x736d61      # 'a' 'm' 's' 0 (little endian)",
        )
        .unwrap();
        let config = PlatformConfig {
            cpu_period: SimTime::ns(20),
            stimulus: SquareWave {
                period: 1.0,
                high: 0.0,
                low: 0.0,
            },
            firmware,
        };
        let report = run_fast_platform(rc1_model(), &config, 50e-6);
        assert_eq!(report.uart, b"ams");
    }

    #[test]
    fn dac_feedback_path_reaches_analog_input() {
        // Firmware drives the DAC with a constant 0.25 V, stimulus is zero:
        // the analog RC settles to 0.25 V.
        let firmware = crate::asm::assemble(
            "li $t0, 0x20000000
             li $t1, 250000
             sw $t1, 4($t0)     # DAC = 0.25 V
          spin:
             b spin",
        )
        .unwrap();
        let config = PlatformConfig {
            cpu_period: SimTime::ns(20),
            stimulus: SquareWave {
                period: 1.0,
                high: 0.0,
                low: 0.0,
            },
            firmware,
        };
        let report = run_fast_platform(rc1_model(), &config, 2e-3);
        assert!(
            (report.final_output - 0.25).abs() < 1e-3,
            "RC settles to the DAC value, got {}",
            report.final_output
        );
    }
}
