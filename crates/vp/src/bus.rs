//! The platform memory map: RAM, APB-attached UART, and the analog bridge
//! (ADC/DAC registers) — the digital half of the paper's Figure 1
//! architecture.
//!
//! The bus performs simple address decoding in the style of an APB
//! interconnect: the CPU is the single master, each peripheral claims an
//! address window. The analog bridge registers are backed by shared state
//! ([`SharedBridge`]) that the analog integration process updates every
//! analog time step.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cpu::Bus32;

/// RAM window base (code + data).
pub const RAM_BASE: u32 = 0x0000_0000;
/// RAM window size in bytes.
pub const RAM_SIZE: u32 = 0x0001_0000;
/// UART window base.
pub const UART_BASE: u32 = 0x1000_0000;
/// UART transmit-data register (write-only): low byte is sent.
pub const UART_TX: u32 = UART_BASE;
/// UART status register (read-only): bit 0 = transmitter ready.
pub const UART_STATUS: u32 = UART_BASE + 4;
/// Analog bridge window base.
pub const ANALOG_BASE: u32 = 0x2000_0000;
/// ADC data register (read-only): last analog output sample in µV,
/// two's-complement.
pub const ADC_DATA: u32 = ANALOG_BASE;
/// DAC data register (write): CPU contribution to the analog input in µV.
pub const DAC_DATA: u32 = ANALOG_BASE + 4;
/// ADC sample counter (read-only): analog steps taken so far.
pub const ADC_COUNT: u32 = ANALOG_BASE + 8;

/// State shared between the CPU's bus and the analog integration process.
#[derive(Debug, Default)]
pub struct AnalogBridgeState {
    /// Last analog output sample (volts), written by the analog process.
    pub aout: f64,
    /// CPU-driven analog input contribution (volts), written via the DAC
    /// register.
    pub dac: f64,
    /// Analog steps taken so far.
    pub samples: u32,
}

/// Shared handle to the bridge state (single-threaded kernel ⇒ `Rc`).
pub type SharedBridge = Rc<RefCell<AnalogBridgeState>>;

/// Creates a fresh bridge.
pub fn new_bridge() -> SharedBridge {
    Rc::new(RefCell::new(AnalogBridgeState::default()))
}

/// Shared UART transmit log.
pub type SharedUart = Rc<RefCell<Vec<u8>>>;

/// Converts a voltage to the µV fixed-point register format.
pub fn volts_to_reg(v: f64) -> u32 {
    (v * 1e6).round().clamp(i32::MIN as f64, i32::MAX as f64) as i32 as u32
}

/// Converts the µV register format back to volts.
pub fn reg_to_volts(raw: u32) -> f64 {
    f64::from(raw as i32) * 1e-6
}

/// The platform bus: RAM + UART + analog bridge.
pub struct PlatformBus {
    ram: Vec<u8>,
    uart: SharedUart,
    bridge: SharedBridge,
    /// Reads/writes that fell outside every window (diagnostics).
    pub bus_errors: u64,
}

impl PlatformBus {
    /// Creates a bus with zeroed RAM.
    pub fn new(uart: SharedUart, bridge: SharedBridge) -> Self {
        PlatformBus {
            ram: vec![0; RAM_SIZE as usize],
            uart,
            bridge,
            bus_errors: 0,
        }
    }

    /// Loads a word image at a byte offset into RAM (firmware loading).
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = base as usize + i * 4;
            self.ram[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
}

impl Bus32 for PlatformBus {
    fn read32(&mut self, addr: u32) -> u32 {
        if addr < RAM_BASE + RAM_SIZE {
            let a = (addr & !3) as usize;
            return u32::from_le_bytes(self.ram[a..a + 4].try_into().expect("in range"));
        }
        match addr {
            UART_STATUS => 1, // always ready
            ADC_DATA => volts_to_reg(self.bridge.borrow().aout),
            ADC_COUNT => self.bridge.borrow().samples,
            DAC_DATA => volts_to_reg(self.bridge.borrow().dac),
            _ => {
                self.bus_errors += 1;
                0
            }
        }
    }

    fn write32(&mut self, addr: u32, value: u32) {
        if addr < RAM_BASE + RAM_SIZE {
            let a = (addr & !3) as usize;
            self.ram[a..a + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        match addr {
            UART_TX => self.uart.borrow_mut().push(value as u8),
            DAC_DATA => self.bridge.borrow_mut().dac = reg_to_volts(value),
            _ => {
                self.bus_errors += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> (PlatformBus, SharedUart, SharedBridge) {
        let uart: SharedUart = Rc::new(RefCell::new(Vec::new()));
        let bridge = new_bridge();
        (PlatformBus::new(uart.clone(), bridge.clone()), uart, bridge)
    }

    #[test]
    fn ram_read_write_roundtrip() {
        let (mut b, _, _) = bus();
        b.write32(0x100, 0xDEAD_BEEF);
        assert_eq!(b.read32(0x100), 0xDEAD_BEEF);
        b.write8(0x101, 0x42);
        assert_eq!(b.read32(0x100), 0xDEAD_42EF);
        assert_eq!(b.read16(0x102), 0xDEAD);
    }

    #[test]
    fn firmware_loading() {
        let (mut b, _, _) = bus();
        b.load_words(0, &[1, 2, 3]);
        assert_eq!(b.read32(0), 1);
        assert_eq!(b.read32(8), 3);
    }

    #[test]
    fn uart_collects_bytes() {
        let (mut b, uart, _) = bus();
        assert_eq!(b.read32(UART_STATUS), 1);
        b.write32(UART_TX, u32::from(b'h'));
        b.write32(UART_TX, u32::from(b'i'));
        assert_eq!(&*uart.borrow(), b"hi");
    }

    #[test]
    fn analog_bridge_fixed_point() {
        let (mut b, _, bridge) = bus();
        bridge.borrow_mut().aout = 1.25;
        bridge.borrow_mut().samples = 7;
        assert_eq!(b.read32(ADC_DATA), 1_250_000);
        assert_eq!(b.read32(ADC_COUNT), 7);
        b.write32(DAC_DATA, (-500_000_i32) as u32);
        assert!((bridge.borrow().dac + 0.5).abs() < 1e-12);
        assert_eq!(b.read32(DAC_DATA), (-500_000_i32) as u32);
    }

    #[test]
    fn negative_voltages_roundtrip() {
        assert_eq!(reg_to_volts(volts_to_reg(-2.5)), -2.5);
        assert_eq!(reg_to_volts(volts_to_reg(0.0)), 0.0);
        let v = reg_to_volts(volts_to_reg(1e-6));
        assert!((v - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn unmapped_access_counts_errors() {
        let (mut b, _, _) = bus();
        assert_eq!(b.read32(0x3000_0000), 0);
        b.write32(0x3000_0000, 5);
        assert_eq!(b.bus_errors, 2);
    }
}
