//! The smart-system virtual platform of the paper's §V-B experiments:
//! a MIPS-based CPU executing firmware from memory, an APB-style bus with
//! a UART, and one analog component integrated at a selectable abstraction
//! level.
//!
//! The platform exists in two builds:
//!
//! * [`run_de_platform`] — every component is a process of the
//!   discrete-event kernel (the SystemC-style platform). The analog
//!   component plugs in at any of the paper's levels via
//!   [`AnalogIntegration`]: co-simulated conservative Verilog-AMS, ELN,
//!   TDF, or the abstracted discrete-event model.
//! * [`run_fast_platform`] — the "pure C++" build: a single interleaved
//!   loop stepping the CPU and the compiled analog model with no event
//!   queue at all, reproducing the fastest row of Table III.
//!
//! # Example
//!
//! ```
//! use amsvp_core::{circuits, Abstraction};
//! use amsvp_vp::{monitor_firmware, run_fast_platform, PlatformConfig};
//!
//! let module = vams_parser::parse_module(&circuits::rc_ladder(1))?;
//! let model = Abstraction::new(&module).dt(50e-9).build()?;
//! let config = PlatformConfig::new(monitor_firmware());
//! let report = run_fast_platform(model, &config, 2e-3); // 2 ms simulated
//! // The firmware reports threshold crossings of the analog output.
//! assert!(report.uart.len() >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//!
//! Beyond the single platform, [`run_fleet`] scales the fast build to a
//! *fleet*: N independent smart-system instances in one process, sharing
//! one compiled analog model and one [`Firmware`] image, sharded across
//! the sweep pool with per-device fault isolation.

mod analog;
mod asm;
mod bus;
mod cpu;
mod firmware;
mod fleet;
mod platform;

pub use analog::{
    build_tdf_cluster, opamp_eln, rc_ladder_eln, two_inputs_eln, CompiledAnalog, CosimAnalog,
    ElnAnalog, TdfClusterProcess,
};
pub use asm::{assemble, AsmError};
pub use bus::{
    new_bridge, reg_to_volts, volts_to_reg, AnalogBridgeState, PlatformBus, SharedBridge,
    SharedUart, ADC_COUNT, ADC_DATA, ANALOG_BASE, DAC_DATA, RAM_BASE, RAM_SIZE, UART_BASE,
    UART_STATUS, UART_TX,
};
pub use cpu::{Bus32, CpuCore};
pub use firmware::{monitor_firmware, Firmware, MONITOR_FIRMWARE};
pub use fleet::{run_fleet, DeviceOutcome, DeviceRun, DeviceScenario, FleetConfig, FleetOutcome};
pub use platform::{
    run_de_platform, run_fast_platform, AnalogIntegration, FastAnalog, PlatformConfig,
    PlatformReport,
};
