//! Fleet execution: N independent smart-system instances in one process.
//!
//! Each *device* is a full virtual platform — the MIPS CPU executing
//! firmware over the APB bus and UART, bridged to one analog component —
//! but the expensive artifacts are shared across the whole fleet the way
//! a sweep shares them across scenarios:
//!
//! * the analog model is one [`amsim::CompiledModel`] behind an `Arc`
//!   (bytecode, slot layout, zero-state factors compiled **once**);
//! * the firmware is one [`Firmware`] image behind an `Arc` (assembled
//!   once, loaded into every device's RAM from the same allocation).
//!
//! Devices are sharded across the work-stealing sweep pool in
//! lane-blocks ([`sweep::SweepEngine::run_batched`]); within a block,
//! every device's analog component is one lane of a shared
//! [`amsim::BatchInstance`], so a worker advances a whole block of
//! devices per batched bytecode pass. Per device the runner replicates
//! [`run_fast_platform`]'s interleaving exactly — fractional
//! `cycle_debt` CPU bursts, stimulus sampled at `t = k·dt` plus the
//! device's DAC feedback, output published to the device's bridge after
//! each analog step — so a one-device fleet is bit-identical to the fast
//! platform build on the [`amsim::Instance`] engine.
//!
//! # Determinism
//!
//! Every device's waveform, UART byte stream, and instruction count is
//! bit-identical for any worker count and any lane width: devices never
//! communicate, each lane performs the scalar path's IEEE operations in
//! the scalar order (the batch contract), and the merged report is
//! assembled in device index order. Only the scheduling-shaped counters
//! (`sweep.workers`, `sweep.worker.*`, `sweep.batch.blocks`) and wall
//! timers depend on the run configuration.
//!
//! # Fault isolation
//!
//! Faults retire only their own device, with a typed record in that
//! device's result slot ([`ScenarioOutcome`], generalized from scenarios
//! to devices): panicking firmware (illegal opcode) or a panicking
//! stimulus → [`ScenarioOutcome::Panicked`]; a diverging analog lane →
//! [`ScenarioOutcome::Failed`] with the solver's [`AmsError`]; a budget
//! trip → [`ScenarioOutcome::Budget`]. Sibling devices — including
//! lane-block siblings of the faulted device — finish with bit-identical
//! results, and `ok + failed + panicked + budget` always equals the
//! fleet size.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use amsim::{AmsError, CompiledModel, StepControl};
use amsvp_core::circuits::Stimulus;
use de::SimTime;
use obs::{Obs, Report};
use sweep::{
    panic_message, OutcomeTally, ScenarioBudget, ScenarioCtx, ScenarioOutcome, SweepEngine,
};

use crate::bus::{new_bridge, PlatformBus, SharedBridge, SharedUart};
use crate::cpu::CpuCore;
use crate::firmware::Firmware;
use crate::platform::PlatformReport;

/// Fleet-wide execution parameters: the shared firmware image, the CPU
/// clock, and the sharding/budget knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// CPU clock period for every device (default 20 ns — 50 MHz).
    pub cpu_period: SimTime,
    /// Firmware image shared by every device that does not override it.
    pub firmware: Firmware,
    /// Worker threads the devices are sharded across (performance knob;
    /// results are bit-identical for any value).
    pub workers: usize,
    /// Devices per [`amsim::BatchInstance`] lane-block (performance
    /// knob; results are bit-identical for any value).
    pub lane_width: usize,
    /// Per-device step/wall budget ([`ScenarioBudget::check`], accounted
    /// per lane).
    pub budget: ScenarioBudget,
}

impl FleetConfig {
    /// Paper-default platform clock, one worker, 8-lane blocks, no
    /// budget.
    pub fn new(firmware: Firmware) -> FleetConfig {
        FleetConfig {
            cpu_period: SimTime::ns(20),
            firmware,
            workers: 1,
            lane_width: 8,
            budget: ScenarioBudget::unlimited(),
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, n: usize) -> FleetConfig {
        self.workers = n;
        self
    }

    /// Sets the lane width (devices per batch block).
    #[must_use]
    pub fn lane_width(mut self, n: usize) -> FleetConfig {
        self.lane_width = n;
        self
    }

    /// Sets the per-device budget.
    #[must_use]
    pub fn budget(mut self, budget: ScenarioBudget) -> FleetConfig {
        self.budget = budget;
        self
    }

    /// Sets the CPU clock period.
    #[must_use]
    pub fn cpu_period(mut self, period: SimTime) -> FleetConfig {
        self.cpu_period = period;
        self
    }
}

/// One device of the fleet: its stimulus, duration, and optional
/// per-device overrides.
pub struct DeviceScenario {
    /// Device label, carried through to [`DeviceRun::name`].
    pub name: String,
    /// Stimulus driving the device's analog input (summed with the
    /// device's own DAC feedback, as on the scalar platform).
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Number of nominal-dt analog steps the device runs.
    pub steps: usize,
    /// Firmware override; `None` boots the fleet's shared image.
    pub firmware: Option<Firmware>,
    /// Newton tolerance override for this device's analog lane.
    pub newton_tol: Option<f64>,
    /// Adaptive step-control override for this device's analog lane.
    pub step_control: Option<StepControl>,
}

impl DeviceScenario {
    /// A device with no overrides: shared firmware, model-default solver
    /// settings.
    pub fn new(
        name: impl Into<String>,
        stim: impl Stimulus + Send + Sync + 'static,
        steps: usize,
    ) -> DeviceScenario {
        DeviceScenario {
            name: name.into(),
            stim: Box::new(stim),
            steps,
            firmware: None,
            newton_tol: None,
            step_control: None,
        }
    }
}

/// What one healthy device produced.
#[derive(Debug)]
pub struct DeviceRun {
    /// The device label.
    pub name: String,
    /// The device's platform report: UART bytes, retired instructions,
    /// analog sample count, final output (`kernel_activations` is 0 —
    /// fleet devices run the fast interleaved loop, no event queue).
    pub report: PlatformReport,
    /// `output(0)` after every analog step.
    pub waveform: Vec<f64>,
}

/// Per-device verdict: a completed [`DeviceRun`] or the typed fault that
/// retired the device.
pub type DeviceOutcome = ScenarioOutcome<DeviceRun, AmsError>;

/// Everything a finished fleet run produced.
pub struct FleetOutcome {
    /// One outcome per device, in input order.
    pub devices: Vec<DeviceOutcome>,
    /// Merged instrumentation: the per-block `amsim.*` / `sweep.*`
    /// families merged in device index order, the
    /// `fleet.devices{,.ok,.failed,.panicked,.budget}` tally, and the
    /// per-device platform counters aggregated under `vp.device.*`
    /// ([`Report::merge_prefixed`]).
    pub report: Report,
    /// Wall-clock duration of the whole fleet run in seconds.
    pub wall: f64,
    /// Number of workers the run actually used.
    pub workers: usize,
}

impl FleetOutcome {
    /// The fault tally over all device slots.
    pub fn tally(&self) -> OutcomeTally {
        OutcomeTally::of(&self.devices)
    }
}

/// One device's digital half plus its analog bridge: everything except
/// the analog lane, which lives in the block's shared batch.
struct DevicePlatform {
    cpu: CpuCore,
    bus: PlatformBus,
    bridge: SharedBridge,
    uart: SharedUart,
    cycle_debt: f64,
    waveform: Vec<f64>,
}

impl DevicePlatform {
    fn boot(firmware: &[u32], steps: usize) -> DevicePlatform {
        let uart: SharedUart = Rc::new(RefCell::new(Vec::new()));
        let bridge = new_bridge();
        let mut bus = PlatformBus::new(uart.clone(), bridge.clone());
        bus.load_words(0, firmware);
        DevicePlatform {
            cpu: CpuCore::new(),
            bus,
            bridge,
            uart,
            cycle_debt: 0.0,
            waveform: Vec::with_capacity(steps),
        }
    }
}

/// Runs `devices` smart-system instances over one shared compiled analog
/// model and one shared firmware image, sharded across
/// `config.workers` threads in lane-blocks of `config.lane_width`.
///
/// Device `i`'s result lands in slot `i` of [`FleetOutcome::devices`] —
/// an `Ok(DeviceRun)` or the typed fault that retired the device, never
/// a propagated error (see the module docs for the isolation and
/// determinism contracts).
///
/// # Errors
///
/// [`AmsError::InvalidTolerance`] / [`AmsError::InvalidStepControl`] if
/// any device's solver override is ill-formed — checked up front, before
/// any worker starts; configuration mistakes fail the fleet, only
/// *runtime* faults are isolated.
pub fn run_fleet(
    model: &Arc<CompiledModel>,
    config: &FleetConfig,
    devices: &[DeviceScenario],
) -> Result<FleetOutcome, AmsError> {
    for d in devices {
        if let Some(tol) = d.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        if let Some(ctrl) = d.step_control {
            ctrl.validate(model.dt())?;
        }
    }
    let dt = model.dt();
    let cycles_per_analog = dt / config.cpu_period.as_seconds();
    let engine = SweepEngine::new().workers(config.workers);
    let body = move |ctx: &ScenarioCtx, block: &[DeviceScenario]| {
        run_device_block(model, config, ctx, block, dt, cycles_per_analog)
    };
    let out = engine.run_batched(devices, config.lane_width, body);

    let mut report = out.report;
    let fleet_obs = Obs::recording();
    fleet_obs.add("fleet.devices", devices.len() as u64);
    report.merge(&fleet_obs.report().unwrap_or_default());
    OutcomeTally::of(&out.results).merge_into(&mut report, "fleet.devices", false);
    // Per-device platform counters, aggregated under the `vp.device.*`
    // prefix in device index order — scheduling-independent like the
    // rest of the merge.
    for r in &out.results {
        if let Some(run) = r.result() {
            let dev_obs = Obs::recording();
            dev_obs.add("instructions", run.report.instructions);
            dev_obs.add("uart.bytes", run.report.uart.len() as u64);
            dev_obs.add("analog.samples", u64::from(run.report.analog_samples));
            report.merge_prefixed(&dev_obs.report().unwrap_or_default(), "vp.device.");
        }
    }

    Ok(FleetOutcome {
        devices: out.results,
        report,
        wall: out.wall,
        workers: out.workers,
    })
}

/// Advances one lane-block of devices to completion: the fast platform
/// loop per device, the analog lanes batched through one
/// [`amsim::BatchInstance`].
fn run_device_block(
    model: &Arc<CompiledModel>,
    config: &FleetConfig,
    ctx: &ScenarioCtx,
    block: &[DeviceScenario],
    dt: f64,
    cycles_per_analog: f64,
) -> Vec<DeviceOutcome> {
    let lanes = block.len();
    let mut builder = model
        .batch_instance_builder(lanes)
        .collector(ctx.obs.clone());
    for (l, d) in block.iter().enumerate() {
        if let Some(tol) = d.newton_tol {
            builder = builder.lane_newton_tol(l, tol);
        }
        if let Some(ctrl) = d.step_control {
            builder = builder.lane_step_control(l, ctrl);
        }
    }
    let mut batch = builder.build().expect("overrides validated up front");
    let mut devs: Vec<DevicePlatform> = block
        .iter()
        .map(|d| {
            let image = d.firmware.as_ref().unwrap_or(&config.firmware);
            DevicePlatform::boot(image.words(), d.steps)
        })
        .collect();

    let track_wall = config.budget.wall_cap().is_some();
    let max_steps = block.iter().map(|d| d.steps).max().unwrap_or(0);
    // Faults the batch cannot see (CPU/stimulus panics, budget trips);
    // solver faults live on the batch's lanes themselves.
    let mut fault: Vec<Option<DeviceOutcome>> = (0..lanes).map(|_| None).collect();
    let mut charged = vec![0u64; lanes];
    let mut lane_wall = vec![0.0f64; lanes];
    let mut in_solve = vec![false; lanes];
    let mut inputs = batch.input_frame();
    for k in 0..max_steps {
        // Per device: burn this step's CPU cycles, then sample the
        // stimulus plus the device's DAC feedback — both inside one
        // catch_unwind so an illegal opcode or a panicking stimulus
        // retires only this device.
        for (l, d) in block.iter().enumerate() {
            if fault[l].is_some() || !batch.lane_active(l) {
                continue;
            }
            if k >= d.steps {
                // Shorter device: done — mask it out of the block.
                batch.retire(l);
                continue;
            }
            charged[l] += 1;
            if let Err(b) = config.budget.check(charged[l], lane_wall[l]) {
                fault[l] = Some(ScenarioOutcome::Budget(b));
                batch.retire(l);
                continue;
            }
            let sample_t0 = track_wall.then(Instant::now);
            let dev = &mut devs[l];
            match catch_unwind(AssertUnwindSafe(|| {
                // Bit-for-bit the fast platform's interleaving:
                // fractional cycle accounting, halted CPU keeps its
                // debt, stimulus sampled at t = k·dt.
                dev.cycle_debt += cycles_per_analog;
                while dev.cycle_debt >= 1.0 {
                    dev.cycle_debt -= 1.0;
                    if dev.cpu.halted() {
                        break;
                    }
                    dev.cpu.step(&mut dev.bus);
                }
                d.stim.value(k as f64 * dt) + dev.bridge.borrow().dac
            })) {
                Ok(u) => inputs.broadcast(l, u),
                Err(payload) => {
                    fault[l] = Some(ScenarioOutcome::Panicked(panic_message(payload)));
                    batch.retire(l);
                }
            }
            if let Some(t0) = sample_t0 {
                lane_wall[l] += t0.elapsed().as_secs_f64();
            }
        }
        let solving = batch.active_lanes();
        if solving == 0 {
            break;
        }
        for (l, s) in in_solve.iter_mut().enumerate() {
            *s = batch.lane_active(l);
        }
        let solve_t0 = track_wall.then(Instant::now);
        batch.try_step(inputs.as_slice());
        if let Some(t0) = solve_t0 {
            let share = t0.elapsed().as_secs_f64() / solving as f64;
            for (l, _) in in_solve.iter().enumerate().filter(|(_, s)| **s) {
                lane_wall[l] += share;
            }
        }
        // Publish each healthy device's new output to its bridge (the
        // firmware's next ADC reads see it) and record the waveform.
        for (l, d) in block.iter().enumerate() {
            if k < d.steps && fault[l].is_none() && batch.lane_active(l) {
                let y = batch.output(0, l);
                let dev = &mut devs[l];
                {
                    let mut b = dev.bridge.borrow_mut();
                    b.aout = y;
                    b.samples = b.samples.wrapping_add(1);
                }
                dev.waveform.push(y);
            }
        }
    }
    let results: Vec<DeviceOutcome> = block
        .iter()
        .enumerate()
        .zip(devs)
        .map(|((l, d), dev)| {
            if let Some(f) = fault[l].take() {
                return f;
            }
            if let Some(e) = batch.lane_error(l) {
                return ScenarioOutcome::Failed {
                    error: e.clone(),
                    attempts: Vec::new(),
                };
            }
            let (analog_samples, final_output) = {
                let b = dev.bridge.borrow();
                (b.samples, b.aout)
            };
            ScenarioOutcome::Ok(DeviceRun {
                name: d.name.clone(),
                report: PlatformReport {
                    uart: dev.uart.borrow().clone(),
                    instructions: dev.cpu.retired(),
                    analog_samples,
                    final_output,
                    kernel_activations: 0,
                },
                waveform: dev.waveform,
            })
        })
        .collect();
    batch.flush_counters();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::monitor_firmware;
    use amsim::Simulation;
    use amsvp_core::circuits::{self, PiecewiseConstant};

    const DT: f64 = 1e-6;
    const STEPS: usize = 120;

    fn rc1_model() -> Arc<CompiledModel> {
        let m = vams_parser::parse_module(&circuits::rc_ladder(1)).unwrap();
        Simulation::new(&m)
            .dt(DT)
            .output("V(out)")
            .compile()
            .unwrap()
    }

    fn fleet_config() -> FleetConfig {
        FleetConfig::new(Firmware::from(monitor_firmware()))
    }

    fn devices(n: usize) -> Vec<DeviceScenario> {
        (0..n)
            .map(|i| {
                DeviceScenario::new(
                    format!("dev{i}"),
                    PiecewiseConstant::seeded(i as u64 + 1, 5, 12.0 * DT, 0.0, 1.0),
                    STEPS,
                )
            })
            .collect()
    }

    #[test]
    fn fleet_runs_every_device_and_tallies_conserve() {
        let model = rc1_model();
        let out = run_fleet(&model, &fleet_config().workers(2), &devices(10)).unwrap();
        assert_eq!(out.devices.len(), 10);
        let tally = out.tally();
        assert_eq!(tally.ok, 10);
        assert_eq!(tally.total(), 10);
        assert_eq!(out.report.counter("fleet.devices"), 10);
        assert_eq!(out.report.counter("fleet.devices.ok"), 10);
        assert_eq!(out.report.counter("fleet.devices.failed"), 0);
        assert_eq!(out.report.counter("sweep.scenarios"), 10);
        for r in &out.devices {
            let run = r.ok().expect("healthy fleet");
            assert_eq!(run.waveform.len(), STEPS);
            assert_eq!(run.report.analog_samples, STEPS as u32);
            assert!(run.report.instructions > 100, "CPU must have run");
            assert_eq!(run.report.kernel_activations, 0);
        }
        // Per-device counters aggregate under the vp.device.* prefix.
        let instructions: u64 = out
            .devices
            .iter()
            .map(|r| r.ok().unwrap().report.instructions)
            .sum();
        assert_eq!(out.report.counter("vp.device.instructions"), instructions);
        assert_eq!(
            out.report.counter("vp.device.analog.samples"),
            (10 * STEPS) as u64
        );
    }

    #[test]
    fn ragged_step_counts_retire_short_devices_cleanly() {
        let model = rc1_model();
        let mut devs = devices(3);
        devs[1].steps = STEPS / 3;
        let out = run_fleet(&model, &fleet_config().lane_width(3), &devs).unwrap();
        let lens: Vec<usize> = out
            .devices
            .iter()
            .map(|r| r.ok().unwrap().waveform.len())
            .collect();
        assert_eq!(lens, vec![STEPS, STEPS / 3, STEPS]);
    }

    #[test]
    fn invalid_override_fails_the_fleet_up_front() {
        let model = rc1_model();
        let mut devs = devices(2);
        devs[0].newton_tol = Some(-1.0);
        match run_fleet(&model, &fleet_config(), &devs).err() {
            Some(AmsError::InvalidTolerance { tol }) => assert_eq!(tol, -1.0),
            other => panic!("want InvalidTolerance, got {other:?}"),
        }
    }

    #[test]
    fn budget_cap_records_typed_outcomes() {
        let model = rc1_model();
        let cap = (STEPS / 2) as u64;
        let config = fleet_config().budget(ScenarioBudget::unlimited().max_steps(cap));
        let out = run_fleet(&model, &config, &devices(4)).unwrap();
        assert_eq!(out.tally().budget, 4);
        assert_eq!(out.report.counter("fleet.devices.budget"), 4);
        for (i, r) in out.devices.iter().enumerate() {
            match r {
                ScenarioOutcome::Budget(b) => {
                    assert_eq!(b.steps, cap + 1, "device {i} trips right past the cap");
                }
                other => panic!("device {i}: want Budget, got {other:?}"),
            }
        }
    }
}
