//! Analog integration styles: the same analog component embedded in the
//! platform at every abstraction level of the paper's Table III.
//!
//! Each integration is a DE process that advances the analog solution by
//! one analog time step per activation, reading the stimulus (plus any
//! CPU-driven DAC contribution) and publishing the output sample to the
//! [`SharedBridge`]:
//!
//! * [`CompiledAnalog`] — the abstracted signal-flow model compiled to
//!   register programs (the "SC-DE" row);
//! * [`TdfClusterProcess`] + [`build_tdf_cluster`] — the abstracted model
//!   wrapped in a statically scheduled TDF cluster (the "SC-AMS/TDF" row);
//! * [`ElnAnalog`] — a hand-built electrical-linear-network model solved by
//!   MNA every step (the "SC-AMS/ELN" row; the paper also wrote these
//!   manually);
//! * [`CosimAnalog`] — the full conservative Verilog-AMS simulator on its
//!   own thread, synchronized every analog step (the "Verilog-AMS
//!   co-simulation" rows).

use amsim::cosim::CosimHandle;
use amsvp_core::circuits::{SquareWave, Stimulus};
use amsvp_core::SignalFlowModel;
use de::{ProcCtx, Process, SimTime};
use eln::{ElnNetwork, ElnSolver, NodeId, SourceId};
use tdf::{InPort, Io, OutPort, TdfExecutor, TdfGraph, TdfModule};

use crate::bus::SharedBridge;

/// Computes the analog input sample: stimulus plus CPU DAC contribution.
fn input_sample<S: Stimulus>(stim: &S, t: f64, bridge: &SharedBridge) -> f64 {
    stim.value(t) + bridge.borrow().dac
}

fn publish(bridge: &SharedBridge, aout: f64) {
    let mut b = bridge.borrow_mut();
    b.aout = aout;
    b.samples = b.samples.wrapping_add(1);
}

// ---------------------------------------------------------------- SC-DE

/// The abstracted model as a plain DE process (the paper's SystemC-DE
/// integration).
pub struct CompiledAnalog<S: Stimulus = SquareWave> {
    model: SignalFlowModel,
    bridge: SharedBridge,
    stim: S,
    dt: f64,
    step: SimTime,
    k: u64,
    inputs: Vec<f64>,
}

impl<S: Stimulus> CompiledAnalog<S> {
    /// Wraps a compiled model; all model inputs are driven with the same
    /// stimulus sample.
    pub fn new(model: SignalFlowModel, bridge: SharedBridge, stim: S) -> Self {
        let dt = model.dt();
        let inputs = vec![0.0; model.input_names().len()];
        CompiledAnalog {
            model,
            bridge,
            stim,
            dt,
            step: SimTime::from_seconds(dt),
            k: 0,
            inputs,
        }
    }
}

impl<S: Stimulus + 'static> Process for CompiledAnalog<S> {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        // t = k·dt (not accumulated) so every integration level samples
        // the stimulus at bit-identical times.
        let t = self.k as f64 * self.dt;
        let u = input_sample(&self.stim, t, &self.bridge);
        self.inputs.iter_mut().for_each(|v| *v = u);
        self.model.step(&self.inputs);
        publish(&self.bridge, self.model.output(0));
        self.k += 1;
        ctx.notify_self_after(self.step);
    }
}

// ----------------------------------------------------------------- TDF

/// TDF stimulus source: a [`Stimulus`] waveform plus DAC contribution.
pub struct TdfStimulus<S: Stimulus = SquareWave> {
    out: OutPort,
    stim: S,
    bridge: SharedBridge,
    dt: f64,
    k: u64,
}

impl<S: Stimulus + 'static> TdfModule for TdfStimulus<S> {
    fn processing(&mut self, io: &mut Io<'_>) {
        // t = k·dt for bit-identical sampling across integration levels.
        let t = self.k as f64 * self.dt;
        let _ = io.time();
        let u = input_sample(&self.stim, t, &self.bridge);
        io.write(self.out, 0, u);
        self.k += 1;
    }
}

/// The abstracted model as a TDF module.
pub struct TdfSignalFlow {
    inp: InPort,
    out: OutPort,
    model: SignalFlowModel,
    inputs: Vec<f64>,
}

impl TdfModule for TdfSignalFlow {
    fn processing(&mut self, io: &mut Io<'_>) {
        let u = io.read(self.inp, 0);
        self.inputs.iter_mut().for_each(|v| *v = u);
        self.model.step(&self.inputs);
        io.write(self.out, 0, self.model.output(0));
    }
}

/// TDF sink publishing samples to the bridge.
pub struct TdfBridgeSink {
    inp: InPort,
    bridge: SharedBridge,
}

impl TdfModule for TdfBridgeSink {
    fn processing(&mut self, io: &mut Io<'_>) {
        publish(&self.bridge, io.read(self.inp, 0));
    }
}

/// Builds the three-module TDF cluster (stimulus → model → sink) around an
/// abstracted model.
///
/// # Errors
///
/// Propagates TDF elaboration errors (none expected for this fixed
/// pipeline).
pub fn build_tdf_cluster<S: Stimulus + 'static>(
    model: SignalFlowModel,
    bridge: SharedBridge,
    stim: S,
) -> Result<TdfExecutor, tdf::TdfError> {
    let dt = SimTime::from_seconds(model.dt());
    let mut g = TdfGraph::new();
    let src_out = g.out_port(1);
    let m_in = g.in_port(1);
    let m_out = g.out_port(1);
    let sink_in = g.in_port(1);
    g.connect(src_out, m_in, 0);
    g.connect(m_out, sink_in, 0);
    let n_inputs = model.input_names().len();
    let src = g.add_module_named(
        "stimulus",
        TdfStimulus {
            out: src_out,
            stim,
            bridge: bridge.clone(),
            dt: model.dt(),
            k: 0,
        },
        &[],
        &[src_out],
    );
    g.add_module_named(
        "model",
        TdfSignalFlow {
            inp: m_in,
            out: m_out,
            model,
            inputs: vec![0.0; n_inputs],
        },
        &[m_in],
        &[m_out],
    );
    g.add_module_named(
        "sink",
        TdfBridgeSink {
            inp: sink_in,
            bridge,
        },
        &[sink_in],
        &[],
    );
    g.set_timestep(src, dt);
    g.build()
}

/// DE process advancing a TDF cluster one period per activation (how
/// SystemC-AMS nests TDF clusters in the SystemC scheduler).
pub struct TdfClusterProcess {
    exec: TdfExecutor,
    period: SimTime,
}

impl TdfClusterProcess {
    /// Wraps an elaborated cluster.
    pub fn new(exec: TdfExecutor) -> Self {
        let period = exec.period();
        TdfClusterProcess { exec, period }
    }
}

impl Process for TdfClusterProcess {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        self.exec.run_iteration();
        ctx.notify_self_after(self.period);
    }
}

// ----------------------------------------------------------------- ELN

/// A hand-built ELN model advanced in lockstep with the kernel (the
/// paper's manually written SystemC-AMS/ELN integration).
pub struct ElnAnalog<S: Stimulus = SquareWave> {
    solver: ElnSolver,
    sources: Vec<SourceId>,
    out: NodeId,
    bridge: SharedBridge,
    stim: S,
    step: SimTime,
    k: u64,
}

impl<S: Stimulus> ElnAnalog<S> {
    /// Wraps an ELN solver; every listed source is driven with the same
    /// stimulus sample.
    pub fn new(
        solver: ElnSolver,
        sources: Vec<SourceId>,
        out: NodeId,
        bridge: SharedBridge,
        stim: S,
    ) -> Self {
        let step = SimTime::from_seconds(solver.dt());
        ElnAnalog {
            solver,
            sources,
            out,
            bridge,
            stim,
            step,
            k: 0,
        }
    }
}

impl<S: Stimulus + 'static> Process for ElnAnalog<S> {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        let t = self.k as f64 * self.solver.dt();
        let u = input_sample(&self.stim, t, &self.bridge);
        for &s in &self.sources {
            self.solver.set_source(s, u);
        }
        self.solver
            .try_step()
            .unwrap_or_else(|e| panic!("eln analog step failed: {e}"));
        publish(&self.bridge, self.solver.node_voltage(self.out));
        self.k += 1;
        ctx.notify_self_after(self.step);
    }
}

// --------------------------------------------------------------- Cosim

/// Lockstep co-simulation with the conservative Verilog-AMS solver on its
/// own thread — one full synchronization round trip per analog step.
pub struct CosimAnalog<S: Stimulus = SquareWave> {
    handle: CosimHandle,
    n_inputs: usize,
    bridge: SharedBridge,
    stim: S,
    dt: f64,
    step: SimTime,
    k: u64,
}

impl<S: Stimulus> CosimAnalog<S> {
    /// Wraps a running co-simulation handle stepping at `dt` seconds.
    pub fn new(
        handle: CosimHandle,
        n_inputs: usize,
        dt: f64,
        bridge: SharedBridge,
        stim: S,
    ) -> Self {
        CosimAnalog {
            handle,
            n_inputs,
            bridge,
            stim,
            dt,
            step: SimTime::from_seconds(dt),
            k: 0,
        }
    }
}

impl<S: Stimulus + 'static> Process for CosimAnalog<S> {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        let t = self.k as f64 * self.dt;
        let u = input_sample(&self.stim, t, &self.bridge);
        let inputs = vec![u; self.n_inputs];
        let outputs = self
            .handle
            .step(&inputs)
            .expect("co-simulated solver failed");
        publish(&self.bridge, outputs[0]);
        self.k += 1;
        ctx.notify_self_after(self.step);
    }
}

// --------------------------------------------- manual ELN circuit models

/// Hand-built ELN model of the RCn ladder (R = 5 kΩ, C = 25 nF).
///
/// Returns the network, the stimulus source, and the output node —
/// mirroring the paper's manually written SystemC-AMS/ELN models.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rc_ladder_eln(n: usize) -> (ElnNetwork, SourceId, NodeId) {
    assert!(n >= 1, "RC ladder needs at least one stage");
    let mut net = ElnNetwork::new();
    let input = net.node("in");
    let src = net.vsource("vin", input, ElnNetwork::GROUND);
    let mut prev = input;
    let mut out = input;
    for i in 0..n {
        let node = net.node(format!("n{}", i + 1));
        net.resistor(format!("r{i}"), prev, node, 5e3);
        net.capacitor(format!("c{i}"), node, ElnNetwork::GROUND, 25e-9);
        prev = node;
        out = node;
    }
    (net, src, out)
}

/// Hand-built ELN model of the 2IN summing amplifier of Figure 8(a)
/// (both inputs tied to the same source, as in the platform stimulus).
pub fn two_inputs_eln() -> (ElnNetwork, Vec<SourceId>, NodeId) {
    let mut net = ElnNetwork::new();
    let in1 = net.node("in1");
    let in2 = net.node("in2");
    let inm = net.node("inm");
    let out = net.node("out");
    let s1 = net.vsource("v1", in1, ElnNetwork::GROUND);
    let s2 = net.vsource("v2", in2, ElnNetwork::GROUND);
    net.resistor("r1", in1, inm, 3e3);
    net.resistor("r2", in2, inm, 14e3);
    net.resistor("r3", inm, out, 10e3);
    net.vcvs("op", out, ElnNetwork::GROUND, ElnNetwork::GROUND, inm, 1e5);
    (net, vec![s1, s2], out)
}

/// Hand-built ELN model of the OA operational-amplifier circuit of
/// Figure 8(b).
pub fn opamp_eln() -> (ElnNetwork, SourceId, NodeId) {
    let mut net = ElnNetwork::new();
    let inp = net.node("in");
    let inm = net.node("inm");
    let x = net.node("x");
    let out = net.node("out");
    let src = net.vsource("vin", inp, ElnNetwork::GROUND);
    net.resistor("r1", inp, inm, 400.0);
    net.resistor("r2", inm, out, 1.6e3);
    net.resistor("rin", inm, ElnNetwork::GROUND, 1e6);
    net.vcvs("gain", x, ElnNetwork::GROUND, ElnNetwork::GROUND, inm, 1e5);
    net.resistor("rout", x, out, 20.0);
    net.capacitor("c1", out, ElnNetwork::GROUND, 40e-9);
    (net, src, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::new_bridge;
    use de::Kernel;
    use eln::{Method, Transient};
    use vams_parser::parse_module;

    fn rc1_model(dt: f64) -> SignalFlowModel {
        let m = parse_module(&amsvp_core::circuits::rc_ladder(1)).unwrap();
        amsvp_core::Abstraction::new(&m).dt(dt).build().unwrap()
    }

    #[test]
    fn compiled_analog_tracks_square_wave() {
        let tau = 5e3 * 25e-9;
        let dt = tau / 50.0;
        let bridge = new_bridge();
        let stim = SquareWave {
            period: 20.0 * tau,
            high: 1.0,
            low: 0.0,
        };
        let mut k = Kernel::new();
        k.register(CompiledAnalog::new(rc1_model(dt), bridge.clone(), stim));
        // After several τ at constant high input, the output approaches 1.
        k.run_until(SimTime::from_seconds(8.0 * tau)).unwrap();
        let v = bridge.borrow().aout;
        assert!((v - 1.0).abs() < 2e-3, "settled output, got {v}");
        assert!(bridge.borrow().samples >= 400);
    }

    #[test]
    fn tdf_cluster_matches_de_integration() {
        let tau = 5e3 * 25e-9;
        let dt = tau / 50.0;
        let stim = SquareWave::paper();

        // DE integration. The kernel processes events at the end time
        // inclusively, so stop half a step early for exactly 200 steps.
        let bridge_de = new_bridge();
        let mut k = Kernel::new();
        k.register(CompiledAnalog::new(rc1_model(dt), bridge_de.clone(), stim));
        k.run_until(SimTime::from_seconds(199.5 * dt)).unwrap();

        // TDF integration: run the cluster the same number of periods.
        let bridge_tdf = new_bridge();
        let mut exec = build_tdf_cluster(rc1_model(dt), bridge_tdf.clone(), stim).unwrap();
        exec.run_until(SimTime::from_seconds(200.0 * dt));

        let a = bridge_de.borrow().aout;
        let b = bridge_tdf.borrow().aout;
        assert!(
            (a - b).abs() < 1e-9,
            "same model, same stimulus ⇒ same samples: {a} vs {b}"
        );
    }

    #[test]
    fn eln_ladder_matches_abstracted_model() {
        let tau = 5e3 * 25e-9;
        let dt = tau / 100.0;
        let (net, src, out) = rc_ladder_eln(1);
        let solver = Transient::new(&net)
            .dt(dt)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        let bridge = new_bridge();
        let stim = SquareWave::paper();
        let mut k = Kernel::new();
        k.register(ElnAnalog::new(solver, vec![src], out, bridge.clone(), stim));
        // Stop half a step early: events at the end time are inclusive.
        k.run_until(SimTime::from_seconds(299.5 * dt)).unwrap();
        let eln_v = bridge.borrow().aout;

        let mut model = rc1_model(dt);
        for i in 0..300 {
            model.step(&[stim.value(i as f64 * dt)]);
        }
        assert!(
            (eln_v - model.output(0)).abs() < 1e-9,
            "backward Euler at same dt must agree: {eln_v} vs {}",
            model.output(0)
        );
    }

    #[test]
    fn eln_fixtures_have_expected_gains() {
        // 2IN at DC: out = −(10/3 + 10/14) when both inputs are 1 V.
        let (net, sources, out) = two_inputs_eln();
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        for &src in &sources {
            s.set_source(src, 1.0);
        }
        s.try_step().unwrap();
        let want = -(10.0 / 3.0 + 10.0 / 14.0);
        assert!((s.node_voltage(out) - want).abs() < 2e-3);

        // OA settles to −4×input.
        let (net, src, out) = opamp_eln();
        let mut s = Transient::new(&net)
            .dt(50e-9)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(src, 0.5);
        for _ in 0..100_000 {
            s.try_step().unwrap();
        }
        assert!((s.node_voltage(out) + 2.0).abs() < 5e-3);
    }

    #[test]
    fn cosim_analog_runs_in_kernel() {
        let m = parse_module(&amsvp_core::circuits::rc_ladder(1)).unwrap();
        let tau = 5e3 * 25e-9;
        let dt = tau / 50.0;
        let sim = amsim::Simulation::new(&m)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();
        let handle = CosimHandle::spawn(sim, 1);
        let bridge = new_bridge();
        let mut k = Kernel::new();
        k.register(CosimAnalog::new(
            handle,
            1,
            dt,
            bridge.clone(),
            SquareWave {
                period: 1.0, // effectively constant high
                high: 1.0,
                low: 0.0,
            },
        ));
        k.run_until(SimTime::from_seconds(100.0 * dt)).unwrap();
        let v = bridge.borrow().aout;
        // Two time constants of charging.
        let analytic = 1.0 - (-2.0_f64).exp();
        assert!((v - analytic).abs() < 2e-2, "{v} vs {analytic}");
    }
}
