//! A small two-pass MIPS assembler for platform firmware.
//!
//! Supports the instruction subset of [`CpuCore`](crate::CpuCore), labels,
//! `#` comments, decimal/hex immediates, the `.word` directive, and the
//! usual convenience pseudo-instructions (`li`, `la`, `move`, `nop`, `b`).
//!
//! # Example
//!
//! ```
//! let words = amsvp_vp::assemble(
//!     "li $t0, 42     # expands to two words
//!      break",
//! )?;
//! assert_eq!(words.len(), 3);
//! # Ok::<(), amsvp_vp::AsmError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn register(name: &str, line: usize) -> Result<u32, AsmError> {
    let name = name
        .strip_prefix('$')
        .ok_or_else(|| err(line, format!("expected register, found `{name}`")))?;
    if let Ok(n) = name.parse::<u32>() {
        if n < 32 {
            return Ok(n);
        }
        return Err(err(line, format!("register ${n} out of range")));
    }
    const NAMES: [&str; 32] = [
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
        "fp", "ra",
    ];
    NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| i as u32)
        .ok_or_else(|| err(line, format!("unknown register `${name}`")))
}

fn parse_int(text: &str, line: usize) -> Result<i64, AsmError> {
    let t = text.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| err(line, format!("malformed integer `{text}`")))?;
    Ok(if neg { -v } else { v })
}

#[derive(Debug, Clone)]
struct Item {
    line: usize,
    label: Option<String>,
    mnemonic: String,
    operands: Vec<String>,
}

fn tokenize(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    let mut pending_label: Option<String> = None;
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let mut text = raw;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line, format!("bad label `{label}`")));
            }
            if pending_label.is_some() {
                return Err(err(line, "two labels without an instruction between"));
            }
            pending_label = Some(label.to_string());
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r),
            None => (text, ""),
        };
        let operands: Vec<String> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        items.push(Item {
            line,
            label: pending_label.take(),
            mnemonic: mnemonic.to_lowercase(),
            operands,
        });
    }
    if pending_label.is_some() {
        // Trailing label: attach it to a terminating nop so jumps to the
        // end of the program resolve.
        items.push(Item {
            line: source.lines().count(),
            label: pending_label,
            mnemonic: "nop".to_string(),
            operands: Vec::new(),
        });
    }
    Ok(items)
}

/// How many words an item expands to.
fn item_size(item: &Item) -> usize {
    match item.mnemonic.as_str() {
        // `li`/`la` conservatively take two words; single-word cases are
        // padded with a `nop`-equivalent second word only when needed —
        // we keep it simple and always emit the canonical lui/ori pair
        // unless the value fits the addiu form.
        "li" | "la" => 2,
        _ => 1,
    }
}

fn r_type(funct: u32, rs: u32, rt: u32, rd: u32, shamt: u32) -> u32 {
    (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn i_type(op: u32, rs: u32, rt: u32, imm: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF)
}

/// Assembles MIPS source into little-endian instruction words, origin 0.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, undefined label, immediate out of range).
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    let items = tokenize(source)?;

    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr = 0u32;
    for item in &items {
        if let Some(label) = &item.label {
            if labels.insert(label.clone(), addr).is_some() {
                return Err(err(item.line, format!("duplicate label `{label}`")));
            }
        }
        addr += 4 * item_size(item) as u32;
    }

    // Pass 2: encode.
    let mut words = Vec::new();
    for item in &items {
        encode(item, &labels, &mut words)?;
    }
    Ok(words)
}

fn lookup(labels: &HashMap<String, u32>, name: &str, line: usize) -> Result<u32, AsmError> {
    labels
        .get(name)
        .copied()
        .ok_or_else(|| err(line, format!("undefined label `{name}`")))
}

fn encode(
    item: &Item,
    labels: &HashMap<String, u32>,
    words: &mut Vec<u32>,
) -> Result<(), AsmError> {
    let line = item.line;
    let ops = &item.operands;
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!(
                    "{} expects {n} operand(s), found {}",
                    item.mnemonic,
                    ops.len()
                ),
            ))
        }
    };
    let reg = |i: usize| register(&ops[i], line);
    // imm or label value
    let value = |i: usize| -> Result<i64, AsmError> {
        if let Ok(v) = parse_int(&ops[i], line) {
            Ok(v)
        } else if let Some(&a) = labels.get(ops[i].as_str()) {
            Ok(i64::from(a))
        } else {
            Err(err(line, format!("malformed value `{}`", ops[i])))
        }
    };
    let imm16 = |i: usize| -> Result<u32, AsmError> {
        let v = parse_int(&ops[i], line)?;
        if !(-(1 << 15)..(1 << 16)).contains(&v) {
            return Err(err(line, format!("immediate {v} out of 16-bit range")));
        }
        Ok((v as u32) & 0xFFFF)
    };
    // `offset(base)` memory operand
    let mem = |i: usize| -> Result<(u32, u32), AsmError> {
        let text = &ops[i];
        let open = text
            .find('(')
            .ok_or_else(|| err(line, format!("expected offset(base), found `{text}`")))?;
        let close = text
            .rfind(')')
            .ok_or_else(|| err(line, format!("missing `)` in `{text}`")))?;
        let off_text = text[..open].trim();
        let off = if off_text.is_empty() {
            0
        } else {
            parse_int(off_text, line)?
        };
        if !(-(1 << 15)..(1 << 15)).contains(&off) {
            return Err(err(line, format!("offset {off} out of range")));
        }
        let base = register(text[open + 1..close].trim(), line)?;
        Ok(((off as u32) & 0xFFFF, base))
    };
    let branch_off = |i: usize, here: u32| -> Result<u32, AsmError> {
        let target = lookup(labels, &ops[i], line)?;
        let diff = (i64::from(target) - i64::from(here) - 4) / 4;
        if !(-(1 << 15)..(1 << 15)).contains(&diff) {
            return Err(err(line, format!("branch to `{}` out of range", ops[i])));
        }
        Ok((diff as u32) & 0xFFFF)
    };
    let here = (words.len() * 4) as u32;

    match item.mnemonic.as_str() {
        ".word" => {
            need(1)?;
            words.push(value(0)? as u32);
        }
        "nop" => {
            need(0)?;
            words.push(0);
        }
        "break" => {
            need(0)?;
            words.push(0x0000_000D);
        }
        "move" => {
            need(2)?;
            words.push(r_type(0x21, reg(1)?, 0, reg(0)?, 0)); // addu rd, rs, $0
        }
        "li" | "la" => {
            need(2)?;
            let rt = reg(0)?;
            let v = value(1)? as u32;
            // Canonical pair; the first word is skippable when the upper
            // half is zero, but a fixed two-word expansion keeps label
            // addresses independent of operand values.
            words.push(i_type(0x0F, 0, 1, v >> 16)); // lui $at, hi
            if v >> 16 == 0 {
                let last = words.len() - 1;
                words[last] = i_type(0x09, 0, rt, v & 0xFFFF); // addiu rt,$0,lo
                words.push(0); // nop filler keeps the size fixed
            } else {
                words.push(i_type(0x0D, 1, rt, v & 0xFFFF)); // ori rt, $at, lo
            }
        }
        "lui" => {
            need(2)?;
            words.push(i_type(0x0F, 0, reg(0)?, imm16(1)?));
        }
        "addiu" | "addi" => {
            need(3)?;
            words.push(i_type(0x09, reg(1)?, reg(0)?, imm16(2)?));
        }
        "slti" => {
            need(3)?;
            words.push(i_type(0x0A, reg(1)?, reg(0)?, imm16(2)?));
        }
        "sltiu" => {
            need(3)?;
            words.push(i_type(0x0B, reg(1)?, reg(0)?, imm16(2)?));
        }
        "andi" => {
            need(3)?;
            words.push(i_type(0x0C, reg(1)?, reg(0)?, imm16(2)?));
        }
        "ori" => {
            need(3)?;
            words.push(i_type(0x0D, reg(1)?, reg(0)?, imm16(2)?));
        }
        "xori" => {
            need(3)?;
            words.push(i_type(0x0E, reg(1)?, reg(0)?, imm16(2)?));
        }
        "addu" | "add" | "subu" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" => {
            need(3)?;
            let funct = match item.mnemonic.as_str() {
                "add" => 0x20,
                "addu" => 0x21,
                "sub" => 0x22,
                "subu" => 0x23,
                "and" => 0x24,
                "or" => 0x25,
                "xor" => 0x26,
                "nor" => 0x27,
                "slt" => 0x2A,
                _ => 0x2B,
            };
            words.push(r_type(funct, reg(1)?, reg(2)?, reg(0)?, 0));
        }
        "sll" | "srl" | "sra" => {
            need(3)?;
            let funct = match item.mnemonic.as_str() {
                "sll" => 0x00,
                "srl" => 0x02,
                _ => 0x03,
            };
            let sh = parse_int(&ops[2], line)?;
            if !(0..32).contains(&sh) {
                return Err(err(line, format!("shift amount {sh} out of range")));
            }
            words.push(r_type(funct, 0, reg(1)?, reg(0)?, sh as u32));
        }
        "sllv" | "srlv" | "srav" => {
            need(3)?;
            let funct = match item.mnemonic.as_str() {
                "sllv" => 0x04,
                "srlv" => 0x06,
                _ => 0x07,
            };
            words.push(r_type(funct, reg(2)?, reg(1)?, reg(0)?, 0));
        }
        "mult" | "multu" | "div" | "divu" => {
            need(2)?;
            let funct = match item.mnemonic.as_str() {
                "mult" => 0x18,
                "multu" => 0x19,
                "div" => 0x1A,
                _ => 0x1B,
            };
            words.push(r_type(funct, reg(0)?, reg(1)?, 0, 0));
        }
        "mfhi" => {
            need(1)?;
            words.push(r_type(0x10, 0, 0, reg(0)?, 0));
        }
        "mflo" => {
            need(1)?;
            words.push(r_type(0x12, 0, 0, reg(0)?, 0));
        }
        "jr" => {
            need(1)?;
            words.push(r_type(0x08, reg(0)?, 0, 0, 0));
        }
        "jalr" => {
            need(2)?;
            words.push(r_type(0x09, reg(1)?, 0, reg(0)?, 0));
        }
        "lw" | "sw" | "lb" | "lbu" | "lh" | "lhu" | "sb" | "sh" => {
            need(2)?;
            let op = match item.mnemonic.as_str() {
                "lb" => 0x20,
                "lh" => 0x21,
                "lw" => 0x23,
                "lbu" => 0x24,
                "lhu" => 0x25,
                "sb" => 0x28,
                "sh" => 0x29,
                _ => 0x2B,
            };
            let (off, base) = mem(1)?;
            words.push(i_type(op, base, reg(0)?, off));
        }
        "beq" | "bne" => {
            need(3)?;
            let op = if item.mnemonic == "beq" { 0x04 } else { 0x05 };
            words.push(i_type(op, reg(0)?, reg(1)?, branch_off(2, here)?));
        }
        "b" => {
            need(1)?;
            words.push(i_type(0x04, 0, 0, branch_off(0, here)?));
        }
        "blez" | "bgtz" => {
            need(2)?;
            let op = if item.mnemonic == "blez" { 0x06 } else { 0x07 };
            words.push(i_type(op, reg(0)?, 0, branch_off(1, here)?));
        }
        "bltz" | "bgez" => {
            need(2)?;
            let rt = if item.mnemonic == "bltz" { 0 } else { 1 };
            words.push(i_type(0x01, reg(0)?, rt, branch_off(1, here)?));
        }
        "j" | "jal" => {
            need(1)?;
            let op = if item.mnemonic == "j" { 0x02 } else { 0x03 };
            let target = lookup(labels, &ops[0], line)?;
            words.push((op << 26) | ((target >> 2) & 0x03FF_FFFF));
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_r_and_i_types() {
        let w = assemble("addu $t2, $t0, $t1").unwrap();
        assert_eq!(w, vec![(8 << 21) | (9 << 16) | (10 << 11) | 0x21]);
        let w = assemble("addiu $t0, $zero, -1").unwrap();
        assert_eq!(w, vec![(0x09 << 26) | (8 << 16) | 0xFFFF]);
        let w = assemble("lw $t0, 8($sp)").unwrap();
        assert_eq!(w, vec![(0x23 << 26) | (29 << 21) | (8 << 16) | 8]);
    }

    #[test]
    fn li_expands_to_fixed_two_words() {
        let small = assemble("li $t0, 5").unwrap();
        assert_eq!(small.len(), 2);
        let big = assemble("li $t0, 0x12345678").unwrap();
        assert_eq!(big.len(), 2);
        assert_eq!(big[0], (0x0F << 26) | (1 << 16) | 0x1234);
        assert_eq!(big[1], (0x0D << 26) | (1 << 21) | (8 << 16) | 0x5678);
    }

    #[test]
    fn labels_and_branches() {
        let w = assemble(
            "start:
               beq $zero, $zero, start
               b start",
        )
        .unwrap();
        // First branch: offset −1 (back to itself).
        assert_eq!(w[0] & 0xFFFF, 0xFFFF);
        // Second branch at address 4 → offset −2.
        assert_eq!(w[1] & 0xFFFF, 0xFFFE);
    }

    #[test]
    fn forward_labels_and_jumps() {
        let w = assemble(
            "j end
             nop
           end:
             break",
        )
        .unwrap();
        assert_eq!(w[0], (0x02 << 26) | 2, "jump to word 2 (byte 8)");
        assert_eq!(w[2], 0x0000_000D);
    }

    #[test]
    fn la_resolves_label_addresses() {
        let w = assemble(
            "la $t0, data
             break
           data:
             .word 0xCAFEBABE",
        )
        .unwrap();
        // data is at word 3 (la = 2 words + break) → byte 12.
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], 0xCAFE_BABE);
        // addiu $t0, $zero, 12 (upper half zero → addiu form + nop)
        assert_eq!(w[0], (0x09 << 26) | (8 << 16) | 12);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(assemble("frob $t0").unwrap_err().message.contains("frob"));
        assert!(assemble("addu $t0, $t1")
            .unwrap_err()
            .message
            .contains("expects 3"));
        assert!(assemble("li $q0, 5").unwrap_err().message.contains("$q0"));
        assert!(assemble("beq $t0, $t1, nowhere")
            .unwrap_err()
            .message
            .contains("nowhere"));
        assert!(assemble("addiu $t0, $zero, 70000")
            .unwrap_err()
            .message
            .contains("16-bit"));
        let dup = assemble("x: nop\nx: nop").unwrap_err();
        assert!(dup.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let w = assemble(
            "# full-line comment

             nop   # trailing comment
             ",
        )
        .unwrap();
        assert_eq!(w, vec![0]);
    }
}
