//! Reference firmware for the platform experiments.

use crate::asm::assemble;

/// The monitoring firmware of the Table III experiments: polls the ADC,
/// detects crossings of a 0.5 V threshold on the *magnitude* of the
/// analog output (the amplifier circuits invert), keeps a crossing count
/// in `$s3`, and transmits `'1'`/`'0'` over the UART on every state
/// change.
pub const MONITOR_FIRMWARE: &str = "
    # $s0 = analog bridge base, $s1 = uart base
    # $s2 = previous comparator state, $s3 = crossing count
    li $s0, 0x20000000
    li $s1, 0x10000000
    li $s2, 0
    li $s3, 0
loop:
    lw   $t0, 0($s0)        # ADC sample in microvolts (signed)
    bgez $t0, positive
    subu $t0, $zero, $t0    # |sample|
positive:
    li   $t1, 500000        # 0.5 V threshold
    slt  $t2, $t0, $t1      # t2 = |sample| < threshold
    xori $t2, $t2, 1        # t2 = |sample| >= threshold
    beq  $t2, $s2, loop     # no change: keep polling
    move $s2, $t2
    addiu $s3, $s3, 1
    addiu $t3, $t2, 0x30    # ASCII '0' or '1'
    sw   $t3, 0($s1)        # transmit
    b    loop
";

/// Assembles [`MONITOR_FIRMWARE`].
///
/// # Panics
///
/// Never panics in practice: the source is a compile-time constant
/// validated by this crate's tests.
pub fn monitor_firmware() -> Vec<u32> {
    assemble(MONITOR_FIRMWARE).expect("reference firmware must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_firmware_assembles() {
        let words = monitor_firmware();
        assert!(words.len() > 10);
    }
}
