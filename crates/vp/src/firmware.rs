//! Reference firmware for the platform experiments, and the shared
//! decoded-image handle fleets load into every device.

use std::ops::Deref;
use std::sync::Arc;

use crate::asm::assemble;

/// An assembled firmware image shared across platform instances.
///
/// Wraps the instruction words in an `Arc<[u32]>` the way
/// [`amsim::CompiledModel`] shares analog bytecode: a fleet assembles
/// (or decodes) the image **once** and every device's bus loads from the
/// same allocation — cloning a `Firmware` is a reference-count bump, not
/// a copy of the image.
#[derive(Debug, Clone)]
pub struct Firmware(Arc<[u32]>);

impl Firmware {
    /// Wraps assembled instruction words in a shared image.
    pub fn new(words: Vec<u32>) -> Firmware {
        Firmware(words.into())
    }

    /// The instruction words, as loaded at address 0.
    pub fn words(&self) -> &[u32] {
        &self.0
    }

    /// Whether two handles share one image allocation (no per-device
    /// copies — the sharing the fleet runner relies on).
    pub fn shares_image(&self, other: &Firmware) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<Vec<u32>> for Firmware {
    fn from(words: Vec<u32>) -> Firmware {
        Firmware::new(words)
    }
}

impl Deref for Firmware {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        &self.0
    }
}

/// The monitoring firmware of the Table III experiments: polls the ADC,
/// detects crossings of a 0.5 V threshold on the *magnitude* of the
/// analog output (the amplifier circuits invert), keeps a crossing count
/// in `$s3`, and transmits `'1'`/`'0'` over the UART on every state
/// change.
pub const MONITOR_FIRMWARE: &str = "
    # $s0 = analog bridge base, $s1 = uart base
    # $s2 = previous comparator state, $s3 = crossing count
    li $s0, 0x20000000
    li $s1, 0x10000000
    li $s2, 0
    li $s3, 0
loop:
    lw   $t0, 0($s0)        # ADC sample in microvolts (signed)
    bgez $t0, positive
    subu $t0, $zero, $t0    # |sample|
positive:
    li   $t1, 500000        # 0.5 V threshold
    slt  $t2, $t0, $t1      # t2 = |sample| < threshold
    xori $t2, $t2, 1        # t2 = |sample| >= threshold
    beq  $t2, $s2, loop     # no change: keep polling
    move $s2, $t2
    addiu $s3, $s3, 1
    addiu $t3, $t2, 0x30    # ASCII '0' or '1'
    sw   $t3, 0($s1)        # transmit
    b    loop
";

/// Assembles [`MONITOR_FIRMWARE`].
///
/// # Panics
///
/// Never panics in practice: the source is a compile-time constant
/// validated by this crate's tests.
pub fn monitor_firmware() -> Vec<u32> {
    assemble(MONITOR_FIRMWARE).expect("reference firmware must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_firmware_assembles() {
        let words = monitor_firmware();
        assert!(words.len() > 10);
    }

    #[test]
    fn firmware_clones_share_one_image() {
        let fw = Firmware::from(monitor_firmware());
        let other = fw.clone();
        assert!(fw.shares_image(&other));
        assert_eq!(fw.words(), other.words());
        assert!(!fw.shares_image(&Firmware::from(monitor_firmware())));
    }
}
