//! A MIPS-I-subset instruction-set CPU model.
//!
//! The paper's virtual platform runs software on "a MIPS-based CPU
//! executing assembly instructions contained in the memory" (§V-B). This
//! core executes one instruction per [`CpuCore::step`], fetching and
//! accessing data through a caller-supplied [`Bus32`], so the same core
//! drives both the discrete-event platform and the fast single-loop
//! platform.
//!
//! Supported subset: the common MIPS-I ALU, shift, load/store, branch and
//! jump instructions (no FPU, no TLB, no branch delay slots — delay slots
//! are an ISA artifact irrelevant to platform-level simulation and are
//! intentionally not modeled). `break` halts the core.

/// Word-addressable memory/peripheral interface the core executes against.
pub trait Bus32 {
    /// Reads a 32-bit word (address must be 4-aligned).
    fn read32(&mut self, addr: u32) -> u32;
    /// Writes a 32-bit word (address must be 4-aligned).
    fn write32(&mut self, addr: u32, value: u32);

    /// Reads a byte; default goes through `read32`.
    fn read8(&mut self, addr: u32) -> u8 {
        let word = self.read32(addr & !3);
        (word >> ((addr & 3) * 8)) as u8
    }

    /// Writes a byte; default read-modify-writes through the word access.
    fn write8(&mut self, addr: u32, value: u8) {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let old = self.read32(aligned);
        let mask = !(0xFFu32 << shift);
        self.write32(aligned, (old & mask) | (u32::from(value) << shift));
    }

    /// Reads a halfword (address must be 2-aligned).
    fn read16(&mut self, addr: u32) -> u16 {
        let word = self.read32(addr & !3);
        (word >> ((addr & 2) * 8)) as u16
    }

    /// Writes a halfword (address must be 2-aligned).
    fn write16(&mut self, addr: u32, value: u16) {
        let aligned = addr & !3;
        let shift = (addr & 2) * 8;
        let old = self.read32(aligned);
        let mask = !(0xFFFFu32 << shift);
        self.write32(aligned, (old & mask) | (u32::from(value) << shift));
    }
}

/// The architectural state of the core.
#[derive(Debug, Clone)]
pub struct CpuCore {
    /// General-purpose registers; `r[0]` reads as zero.
    regs: [u32; 32],
    /// Program counter (byte address of the next instruction).
    pub pc: u32,
    hi: u32,
    lo: u32,
    halted: bool,
    retired: u64,
}

impl Default for CpuCore {
    fn default() -> Self {
        CpuCore::new()
    }
}

impl CpuCore {
    /// Creates a core with zeroed registers and `pc = 0`.
    pub fn new() -> Self {
        CpuCore {
            regs: [0; 32],
            pc: 0,
            hi: 0,
            lo: 0,
            halted: false,
            retired: 0,
        }
    }

    /// Reads a register (`$0` is hardwired to zero).
    pub fn reg(&self, i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.regs[i]
        }
    }

    /// Writes a register (writes to `$0` are discarded).
    pub fn set_reg(&mut self, i: usize, v: u32) {
        if i != 0 {
            self.regs[i] = v;
        }
    }

    /// Whether the core has executed `break`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes a single instruction. Does nothing once halted.
    ///
    /// # Panics
    ///
    /// Panics on a reserved/unsupported encoding, identifying the opcode
    /// and address — in a virtual platform that is always a firmware or
    /// toolchain bug worth failing loudly on.
    pub fn step(&mut self, bus: &mut impl Bus32) {
        if self.halted {
            return;
        }
        let instr = bus.read32(self.pc);
        let next_pc = self.pc.wrapping_add(4);
        let op = instr >> 26;
        let rs = ((instr >> 21) & 31) as usize;
        let rt = ((instr >> 16) & 31) as usize;
        let rd = ((instr >> 11) & 31) as usize;
        let shamt = (instr >> 6) & 31;
        let funct = instr & 63;
        let imm = instr & 0xFFFF;
        let simm = imm as u16 as i16 as i32;
        let branch_target = |pc: u32| pc.wrapping_add(4).wrapping_add((simm << 2) as u32);

        let mut new_pc = next_pc;
        match op {
            0 => match funct {
                0x00 => self.set_reg(rd, self.reg(rt) << shamt), // sll
                0x02 => self.set_reg(rd, self.reg(rt) >> shamt), // srl
                0x03 => self.set_reg(rd, ((self.reg(rt) as i32) >> shamt) as u32), // sra
                0x04 => self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 31)), // sllv
                0x06 => self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 31)), // srlv
                0x07 => {
                    // srav
                    self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32)
                }
                0x08 => new_pc = self.reg(rs), // jr
                0x09 => {
                    // jalr
                    self.set_reg(rd, next_pc);
                    new_pc = self.reg(rs);
                }
                0x0D => self.halted = true,        // break
                0x10 => self.set_reg(rd, self.hi), // mfhi
                0x12 => self.set_reg(rd, self.lo), // mflo
                0x18 => {
                    // mult
                    let p = i64::from(self.reg(rs) as i32) * i64::from(self.reg(rt) as i32);
                    self.lo = p as u32;
                    self.hi = (p >> 32) as u32;
                }
                0x19 => {
                    // multu
                    let p = u64::from(self.reg(rs)) * u64::from(self.reg(rt));
                    self.lo = p as u32;
                    self.hi = (p >> 32) as u32;
                }
                0x1A => {
                    // div (division by zero leaves hi/lo unchanged, as on
                    // real MIPS the result is unpredictable)
                    let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                    if b != 0 {
                        self.lo = (a.wrapping_div(b)) as u32;
                        self.hi = (a.wrapping_rem(b)) as u32;
                    }
                }
                0x1B => {
                    // divu
                    let (a, b) = (self.reg(rs), self.reg(rt));
                    if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
                        self.lo = q;
                        self.hi = r;
                    }
                }
                0x20 | 0x21 => {
                    // add/addu (no overflow trap modeled)
                    self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)))
                }
                0x22 | 0x23 => {
                    // sub/subu
                    self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)))
                }
                0x24 => self.set_reg(rd, self.reg(rs) & self.reg(rt)), // and
                0x25 => self.set_reg(rd, self.reg(rs) | self.reg(rt)), // or
                0x26 => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)), // xor
                0x27 => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))), // nor
                0x2A => {
                    // slt
                    self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)))
                }
                0x2B => self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt))), // sltu
                other => panic!(
                    "unsupported R-type funct {other:#x} at pc {:#010x}",
                    self.pc
                ),
            },
            0x01 => {
                // REGIMM: bltz (rt=0) / bgez (rt=1)
                let taken = match rt {
                    0 => (self.reg(rs) as i32) < 0,
                    1 => (self.reg(rs) as i32) >= 0,
                    other => panic!("unsupported REGIMM rt {other} at pc {:#010x}", self.pc),
                };
                if taken {
                    new_pc = branch_target(self.pc);
                }
            }
            0x02 => new_pc = (next_pc & 0xF000_0000) | ((instr & 0x03FF_FFFF) << 2), // j
            0x03 => {
                // jal
                self.set_reg(31, next_pc);
                new_pc = (next_pc & 0xF000_0000) | ((instr & 0x03FF_FFFF) << 2);
            }
            0x04 => {
                // beq
                if self.reg(rs) == self.reg(rt) {
                    new_pc = branch_target(self.pc);
                }
            }
            0x05 => {
                // bne
                if self.reg(rs) != self.reg(rt) {
                    new_pc = branch_target(self.pc);
                }
            }
            0x06 => {
                // blez
                if (self.reg(rs) as i32) <= 0 {
                    new_pc = branch_target(self.pc);
                }
            }
            0x07 => {
                // bgtz
                if (self.reg(rs) as i32) > 0 {
                    new_pc = branch_target(self.pc);
                }
            }
            0x08 | 0x09 => {
                // addi/addiu
                self.set_reg(rt, self.reg(rs).wrapping_add(simm as u32))
            }
            0x0A => self.set_reg(rt, u32::from((self.reg(rs) as i32) < simm)), // slti
            0x0B => self.set_reg(rt, u32::from(self.reg(rs) < simm as u32)),   // sltiu
            0x0C => self.set_reg(rt, self.reg(rs) & imm),                      // andi
            0x0D => self.set_reg(rt, self.reg(rs) | imm),                      // ori
            0x0E => self.set_reg(rt, self.reg(rs) ^ imm),                      // xori
            0x0F => self.set_reg(rt, imm << 16),                               // lui
            0x20 => {
                // lb
                let v = bus.read8(self.reg(rs).wrapping_add(simm as u32));
                self.set_reg(rt, v as i8 as i32 as u32);
            }
            0x21 => {
                // lh
                let v = bus.read16(self.reg(rs).wrapping_add(simm as u32));
                self.set_reg(rt, v as i16 as i32 as u32);
            }
            0x23 => {
                // lw
                let v = bus.read32(self.reg(rs).wrapping_add(simm as u32));
                self.set_reg(rt, v);
            }
            0x24 => {
                // lbu
                let v = bus.read8(self.reg(rs).wrapping_add(simm as u32));
                self.set_reg(rt, u32::from(v));
            }
            0x25 => {
                // lhu
                let v = bus.read16(self.reg(rs).wrapping_add(simm as u32));
                self.set_reg(rt, u32::from(v));
            }
            0x28 => {
                // sb
                bus.write8(self.reg(rs).wrapping_add(simm as u32), self.reg(rt) as u8)
            }
            0x29 => {
                // sh
                bus.write16(self.reg(rs).wrapping_add(simm as u32), self.reg(rt) as u16)
            }
            0x2B => {
                // sw
                bus.write32(self.reg(rs).wrapping_add(simm as u32), self.reg(rt))
            }
            other => panic!("unsupported opcode {other:#x} at pc {:#010x}", self.pc),
        }
        self.pc = new_pc;
        self.retired += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    struct RamBus(Vec<u8>);

    impl Bus32 for RamBus {
        fn read32(&mut self, addr: u32) -> u32 {
            let a = addr as usize;
            u32::from_le_bytes(self.0[a..a + 4].try_into().expect("aligned"))
        }
        fn write32(&mut self, addr: u32, value: u32) {
            let a = addr as usize;
            self.0[a..a + 4].copy_from_slice(&value.to_le_bytes());
        }
    }

    fn run(src: &str, max_steps: usize) -> (CpuCore, RamBus) {
        let words = assemble(src).expect("assembles");
        let mut mem = vec![0u8; 64 * 1024];
        for (i, w) in words.iter().enumerate() {
            mem[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let mut bus = RamBus(mem);
        let mut cpu = CpuCore::new();
        for _ in 0..max_steps {
            cpu.step(&mut bus);
            if cpu.halted() {
                break;
            }
        }
        (cpu, bus)
    }

    #[test]
    fn arithmetic_and_logic() {
        let (cpu, _) = run(
            "li $t0, 7
             li $t1, 5
             addu $t2, $t0, $t1
             subu $t3, $t0, $t1
             and  $t4, $t0, $t1
             or   $t5, $t0, $t1
             xor  $t6, $t0, $t1
             slt  $t7, $t1, $t0
             break",
            64,
        );
        assert_eq!(cpu.reg(10), 12); // $t2
        assert_eq!(cpu.reg(11), 2); // $t3
        assert_eq!(cpu.reg(12), 5); // $t4
        assert_eq!(cpu.reg(13), 7); // $t5
        assert_eq!(cpu.reg(14), 2); // $t6
        assert_eq!(cpu.reg(15), 1); // $t7
        assert!(cpu.halted());
    }

    #[test]
    fn shifts_and_immediates() {
        let (cpu, _) = run(
            "li $t0, 0x00F0
             sll $t1, $t0, 4
             srl $t2, $t1, 8
             li $t3, -16
             sra $t4, $t3, 2
             lui $t5, 0x1234
             ori $t5, $t5, 0x5678
             break",
            64,
        );
        assert_eq!(cpu.reg(9), 0xF00);
        assert_eq!(cpu.reg(10), 0xF);
        assert_eq!(cpu.reg(12) as i32, -4);
        assert_eq!(cpu.reg(13), 0x1234_5678);
    }

    #[test]
    fn loads_and_stores() {
        let (cpu, bus) = run(
            "li $t0, 0x1000
             li $t1, 0xDEADBEEF
             sw $t1, 0($t0)
             lw $t2, 0($t0)
             lbu $t3, 0($t0)
             lb  $t4, 3($t0)
             li $t5, 0x42
             sb $t5, 1($t0)
             lw $t6, 0($t0)
             break",
            64,
        );
        assert_eq!(cpu.reg(10), 0xDEAD_BEEF);
        assert_eq!(cpu.reg(11), 0xEF);
        assert_eq!(cpu.reg(12) as i32, 0xDEu8 as i8 as i32);
        assert_eq!(cpu.reg(14), 0xDEAD_42EF);
        let mut b = bus;
        assert_eq!(b.read32(0x1000), 0xDEAD_42EF);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let (cpu, _) = run(
            "li $t0, 0      # sum
             li $t1, 1      # i
             li $t2, 10
          loop:
             addu $t0, $t0, $t1
             addiu $t1, $t1, 1
             slt $t3, $t2, $t1   # 10 < i ?
             beq $t3, $zero, loop
             break",
            256,
        );
        assert_eq!(cpu.reg(8), 55);
    }

    #[test]
    fn function_call_and_return() {
        let (cpu, _) = run(
            "li $a0, 21
             jal double
             move $s0, $v0
             break
          double:
             addu $v0, $a0, $a0
             jr $ra",
            64,
        );
        assert_eq!(cpu.reg(16), 42);
    }

    #[test]
    fn mult_div_and_hilo() {
        let (cpu, _) = run(
            "li $t0, 6
             li $t1, 7
             mult $t0, $t1
             mflo $t2
             li $t3, 45
             li $t4, 7
             divu $t3, $t4
             mflo $t5
             mfhi $t6
             break",
            64,
        );
        assert_eq!(cpu.reg(10), 42);
        assert_eq!(cpu.reg(13), 6);
        assert_eq!(cpu.reg(14), 3);
    }

    #[test]
    fn branches_cover_signs() {
        let (cpu, _) = run(
            "li $t0, -5
             li $t1, 0
             bltz $t0, neg
             li $t2, 111
          neg:
             bgez $t1, nonneg
             li $t3, 222
          nonneg:
             blez $t1, le
             li $t4, 333
          le:
             li $t5, 1
             bgtz $t5, done
             li $t6, 444
          done:
             break",
            64,
        );
        assert_eq!(cpu.reg(10), 0, "skipped by bltz");
        assert_eq!(cpu.reg(11), 0, "skipped by bgez");
        assert_eq!(cpu.reg(12), 0, "skipped by blez");
        assert_eq!(cpu.reg(14), 0, "skipped by bgtz");
    }

    #[test]
    fn halted_core_stays_halted() {
        let (mut cpu, mut bus) = run("break", 4);
        let retired = cpu.retired();
        cpu.step(&mut bus);
        assert_eq!(cpu.retired(), retired);
    }

    #[test]
    #[should_panic(expected = "unsupported opcode")]
    fn unsupported_opcode_panics() {
        let mut bus = RamBus(vec![0xFF; 64]);
        let mut cpu = CpuCore::new();
        cpu.step(&mut bus);
    }
}
