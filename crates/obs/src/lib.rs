//! Lightweight, zero-cost-when-disabled instrumentation for the amsvp
//! simulation substrates.
//!
//! The paper's argument is quantitative — Tables I–III compare simulation
//! cost across abstraction levels — so every solver and kernel in this
//! workspace reports *where* its time goes through this crate:
//!
//! * **Counters** — monotonic event counts (kernel activations, delta
//!   cycles, TDF firings, Newton iterations, LU solves, co-simulation
//!   handshakes).
//! * **Spans** — hierarchical wall-time regions (`span!(obs, "assemble")`);
//!   nested spans record under slash-joined paths such as
//!   `pipeline/assemble`.
//! * **Timers/histograms** — every span exit feeds a per-path timer with
//!   count/total/min/max plus a log₂-nanosecond histogram.
//!
//! All instrumentation goes through the cloneable [`Obs`] handle, which
//! wraps a [`Collector`]. The default collector is a no-op: every hot-path
//! call sites checks [`Obs::enabled`] first (one predictable branch), so a
//! disabled handle costs nothing measurable. [`RecordingCollector`]
//! aggregates into a [`Report`] that serializes to JSON without any
//! external dependency — `crates/bench` writes it as `BENCH_obs.json`.
//!
//! # Example
//!
//! ```
//! use amsvp_obs::Obs;
//!
//! let obs = Obs::recording();
//! {
//!     let _outer = obs.span("pipeline");
//!     let _inner = obs.span("assemble");
//!     obs.add("equations", 12);
//! }
//! let report = obs.report().unwrap();
//! assert_eq!(report.counters["equations"], 12);
//! assert!(report.timers.contains_key("pipeline/assemble"));
//! let json = report.to_json();
//! assert!(json.contains("\"equations\": 12"));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for instrumentation events.
///
/// Every method has a no-op default, so a unit struct implementing
/// `Collector` with an empty body *is* the disabled collector. Collectors
/// must be thread-safe: the co-simulation bridge reports handshakes from
/// its worker thread.
pub trait Collector: Send + Sync + 'static {
    /// Whether events are being recorded. Hot paths gate every other call
    /// (and their own `Instant::now()` reads) on this, so a `false` here
    /// keeps instrumentation overhead to one predictable branch.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the monotonic counter `name`.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one wall-time observation, in seconds, under `name`.
    fn record(&self, name: &str, seconds: f64) {
        let _ = (name, seconds);
    }

    /// Marks the start of a span. Collectors that track hierarchy push
    /// `name` onto their span stack.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// Marks the end of the innermost span named `name`, with its
    /// measured duration in seconds.
    fn span_exit(&self, name: &'static str, seconds: f64) {
        let _ = (name, seconds);
    }

    /// Snapshot of everything recorded so far; `None` for collectors that
    /// keep nothing.
    fn report(&self) -> Option<Report> {
        None
    }
}

/// The do-nothing collector behind [`Obs::none`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCollector;

impl Collector for NoopCollector {}

/// Cloneable instrumentation handle shared by every simulator and kernel.
///
/// Cloning is an `Arc` bump; all clones feed the same collector. The
/// `Default` handle is disabled.
#[derive(Clone)]
pub struct Obs(Arc<dyn Collector>);

impl Obs {
    /// A disabled handle (the default everywhere).
    pub fn none() -> Obs {
        Obs(Arc::new(NoopCollector))
    }

    /// A handle backed by a fresh [`RecordingCollector`].
    pub fn recording() -> Obs {
        Obs(Arc::new(RecordingCollector::default()))
    }

    /// Wraps a custom collector.
    pub fn with_collector(collector: Arc<dyn Collector>) -> Obs {
        Obs(collector)
    }

    /// Whether the underlying collector records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Adds `delta` to counter `name` (no-op when disabled).
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if self.0.enabled() {
            self.0.add(name, delta);
        }
    }

    /// Records a wall-time observation in seconds under `name`.
    #[inline]
    pub fn time(&self, name: &str, seconds: f64) {
        if self.0.enabled() {
            self.0.record(name, seconds);
        }
    }

    /// Opens a hierarchical span; the returned guard closes it on drop.
    /// When disabled this takes no clock reading at all.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let start = if self.0.enabled() {
            self.0.span_enter(name);
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            obs: self,
            name,
            start,
        }
    }

    /// Snapshot of the collector's aggregates (`None` when disabled).
    pub fn report(&self) -> Option<Report> {
        self.0.report()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::none()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Opens a span for the rest of the enclosing scope:
/// `span!(obs, "assemble");`.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        let _span_guard = $obs.span($name);
    };
}

/// RAII guard returned by [`Obs::span`]; records the elapsed time when
/// dropped.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.obs
                .0
                .span_exit(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Tracks how much of a locally-maintained monotonic counter has already
/// been flushed to a collector.
///
/// The simulators keep their performance counters as plain `u64` fields
/// (zero overhead per event) and push the *delta* to [`Obs`] at natural
/// boundaries — the end of a `run_until`, an explicit flush, or `Drop`.
/// `CounterTracker` remembers the last flushed value so repeated flushes
/// never double-count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterTracker(u64);

impl CounterTracker {
    /// Pushes `current - last_flushed` to counter `name` and remembers
    /// `current`. No-op when the handle is disabled or nothing changed.
    pub fn flush(&mut self, obs: &Obs, name: &str, current: u64) {
        if current > self.0 {
            obs.add(name, current - self.0);
            self.0 = current;
        }
    }
}

/// Number of log₂-nanosecond histogram buckets (bucket *k* holds
/// observations in `[2^k, 2^{k+1})` ns; ~35 minutes saturates the last).
pub const HISTOGRAM_BUCKETS: usize = 41;

/// Aggregated wall-time statistics for one timer / span path.
#[derive(Clone, PartialEq)]
pub struct TimerStat {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations in seconds.
    pub total: f64,
    /// Smallest observation in seconds.
    pub min: f64,
    /// Largest observation in seconds.
    pub max: f64,
    /// Log₂-nanosecond histogram; bucket `k` counts observations whose
    /// duration in nanoseconds satisfies `2^k ≤ ns < 2^{k+1}`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for TimerStat {
    fn default() -> Self {
        TimerStat {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: 0.0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl TimerStat {
    fn observe(&mut self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds >= 0.0 {
            seconds
        } else {
            0.0
        };
        self.count += 1;
        self.total += seconds;
        self.min = self.min.min(seconds);
        self.max = self.max.max(seconds);
        let ns = (seconds * 1e9).max(1.0);
        let bucket = (ns.log2() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    fn merge(&mut self, other: &TimerStat) {
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl fmt::Debug for TimerStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerStat")
            .field("count", &self.count)
            .field("total", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// Immutable snapshot of a [`RecordingCollector`]: counters plus timers.
///
/// Serializes to self-describing JSON via [`Report::to_json`]; the bench
/// harness writes it as `BENCH_obs.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Wall-time statistics by timer name / span path.
    pub timers: BTreeMap<String, TimerStat>,
}

impl Report {
    /// Folds another report into this one (counters add, timers merge).
    pub fn merge(&mut self, other: &Report) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.timers {
            self.timers.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Pretty-printed JSON (two-space indent, sorted keys).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_string(&mut s, k);
            s.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"timers\": {");
        for (i, (k, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_string(&mut s, k);
            s.push_str(": { \"count\": ");
            s.push_str(&t.count.to_string());
            s.push_str(", \"total_s\": ");
            push_json_f64(&mut s, t.total);
            s.push_str(", \"mean_s\": ");
            push_json_f64(&mut s, t.mean());
            s.push_str(", \"min_s\": ");
            push_json_f64(&mut s, if t.count == 0 { 0.0 } else { t.min });
            s.push_str(", \"max_s\": ");
            push_json_f64(&mut s, t.max);
            s.push_str(", \"histogram_log2_ns\": [");
            let mut first = true;
            for (bucket, &n) in t.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&format!("[{bucket}, {n}]"));
            }
            s.push_str("] }");
        }
        if !self.timers.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Folds another report into this one with every counter and timer
    /// name prefixed by `prefix` — the namespacing merge a long-running
    /// service needs when it aggregates per-job reports into one
    /// server-wide report without letting job-local names (`sweep.*`,
    /// `amsim.*`) collide with its own `serve.*` families.
    ///
    /// ```
    /// use amsvp_obs::{Obs, Report};
    ///
    /// let job = Obs::recording();
    /// job.add("sweep.scenarios", 8);
    /// let mut server = Report::default();
    /// server.merge_prefixed(&job.report().unwrap(), "jobs.");
    /// assert_eq!(server.counter("jobs.sweep.scenarios"), 8);
    /// ```
    pub fn merge_prefixed(&mut self, other: &Report, prefix: &str) {
        for (k, v) in &other.counters {
            *self.counters.entry(format!("{prefix}{k}")).or_insert(0) += v;
        }
        for (k, v) in &other.timers {
            self.timers
                .entry(format!("{prefix}{k}"))
                .or_default()
                .merge(v);
        }
    }

    /// Value of counter `name`, or 0 when it was never incremented —
    /// convenient for smoke checks asserting on reported counters.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters whose name starts with `prefix`, in name order — the
    /// read-side companion to [`Report::merge_prefixed`] for asserting
    /// on one namespaced family (`fleet.*`, `vp.device.*`) at a time.
    ///
    /// ```
    /// use amsvp_obs::Obs;
    ///
    /// let obs = Obs::recording();
    /// obs.add("fleet.devices.ok", 7);
    /// obs.add("sweep.scenarios", 7);
    /// let report = obs.report().unwrap();
    /// let fleet: Vec<_> = report.counters_with_prefix("fleet.").collect();
    /// assert_eq!(fleet, vec![("fleet.devices.ok", 7)]);
    /// ```
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Writes [`Report::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn push_json_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let formatted = format!("{v}");
        // `{}` prints integral floats without a decimal point; keep the
        // output unambiguously a JSON number with fractional part.
        if formatted.contains('.') || formatted.contains('e') {
            s.push_str(&formatted);
        } else {
            s.push_str(&formatted);
            s.push_str(".0");
        }
    } else {
        s.push_str("null");
    }
}

/// Thread-safe aggregating collector behind [`Obs::recording`].
///
/// Spans nest per collector (one logical span stack): entering `a` then
/// `b` records the inner exit under `a/b`. The co-simulation worker
/// thread only uses counters, so the shared stack stays coherent.
#[derive(Default)]
pub struct RecordingCollector {
    inner: Mutex<RecState>,
}

#[derive(Default)]
struct RecState {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
    stack: Vec<&'static str>,
}

impl RecState {
    fn path_of(&self, name: &'static str) -> String {
        // The stack includes `name` itself (pushed by span_enter).
        let depth = self
            .stack
            .iter()
            .rposition(|&n| std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name)
            .map(|i| i + 1)
            .unwrap_or(self.stack.len());
        let mut path = String::new();
        for n in &self.stack[..depth] {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(n);
        }
        if path.is_empty() {
            path.push_str(name);
        }
        path
    }
}

impl Collector for RecordingCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: u64) {
        let mut st = self.inner.lock().expect("obs lock");
        match st.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn record(&self, name: &str, seconds: f64) {
        let mut st = self.inner.lock().expect("obs lock");
        match st.timers.get_mut(name) {
            Some(t) => t.observe(seconds),
            None => {
                let mut t = TimerStat::default();
                t.observe(seconds);
                st.timers.insert(name.to_string(), t);
            }
        }
    }

    fn span_enter(&self, name: &'static str) {
        self.inner.lock().expect("obs lock").stack.push(name);
    }

    fn span_exit(&self, name: &'static str, seconds: f64) {
        let mut st = self.inner.lock().expect("obs lock");
        let path = st.path_of(name);
        // Pop through the matching entry (robust to a mismatched exit).
        while let Some(top) = st.stack.pop() {
            if top == name {
                break;
            }
        }
        st.timers.entry(path).or_default().observe(seconds);
    }

    fn report(&self) -> Option<Report> {
        let st = self.inner.lock().expect("obs lock");
        Some(Report {
            counters: st.counters.clone(),
            timers: st.timers.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_calls_and_clones() {
        let obs = Obs::recording();
        let clone = obs.clone();
        obs.add("events", 3);
        clone.add("events", 4);
        obs.add("other", 1);
        let report = obs.report().unwrap();
        assert_eq!(report.counters["events"], 7);
        assert_eq!(report.counters["other"], 1);
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let obs = Obs::recording();
        {
            let _a = obs.span("pipeline");
            {
                span!(obs, "acquire");
            }
            {
                span!(obs, "assemble");
            }
        }
        let report = obs.report().unwrap();
        let keys: Vec<&str> = report.timers.keys().map(String::as_str).collect();
        assert_eq!(keys, ["pipeline", "pipeline/acquire", "pipeline/assemble"]);
        assert_eq!(report.timers["pipeline"].count, 1);
        // The outer span covers both inner ones.
        assert!(report.timers["pipeline"].total >= report.timers["pipeline/acquire"].total);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let obs = Obs::none();
        assert!(!obs.enabled());
        obs.add("events", 5);
        obs.time("t", 1.0);
        {
            span!(obs, "phase");
        }
        assert!(obs.report().is_none());
    }

    #[test]
    fn timer_statistics_aggregate() {
        let obs = Obs::recording();
        obs.time("step", 1e-6);
        obs.time("step", 3e-6);
        let report = obs.report().unwrap();
        let t = &report.timers["step"];
        assert_eq!(t.count, 2);
        assert!((t.total - 4e-6).abs() < 1e-12);
        assert!((t.mean() - 2e-6).abs() < 1e-12);
        assert!((t.min - 1e-6).abs() < 1e-12);
        assert!((t.max - 3e-6).abs() < 1e-12);
        // 1 µs = 1000 ns → bucket 9 ([512, 1024) ns); 3 µs → bucket 11.
        assert_eq!(t.buckets[9], 1);
        assert_eq!(t.buckets[11], 1);
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let obs = Obs::recording();
        obs.add("present", 2);
        let report = obs.report().unwrap();
        assert_eq!(report.counter("present"), 2);
        assert_eq!(report.counter("absent"), 0);
    }

    #[test]
    fn report_merges() {
        let a_obs = Obs::recording();
        a_obs.add("n", 1);
        a_obs.time("t", 1.0);
        let b_obs = Obs::recording();
        b_obs.add("n", 2);
        b_obs.time("t", 3.0);
        let mut a = a_obs.report().unwrap();
        a.merge(&b_obs.report().unwrap());
        assert_eq!(a.counters["n"], 3);
        assert_eq!(a.timers["t"].count, 2);
        assert!((a.timers["t"].max - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_prefixed_namespaces_counters_and_timers() {
        let job = Obs::recording();
        job.add("sweep.scenarios", 4);
        job.time("sweep.wall", 0.25);
        let mut server = Report::default();
        server.merge_prefixed(&job.report().unwrap(), "jobs.");
        server.merge_prefixed(&job.report().unwrap(), "jobs.");
        assert_eq!(server.counter("jobs.sweep.scenarios"), 8);
        assert_eq!(server.counter("sweep.scenarios"), 0);
        assert_eq!(server.timers["jobs.sweep.wall"].count, 2);
        assert!(!server.timers.contains_key("sweep.wall"));
        // Empty prefix degenerates to a plain merge.
        let mut plain = Report::default();
        plain.merge_prefixed(&job.report().unwrap(), "");
        assert_eq!(plain.counter("sweep.scenarios"), 4);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let obs = Obs::recording();
        obs.add("a\"b", 1);
        obs.time("t", 0.5);
        let json = obs.report().unwrap().to_json();
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"total_s\": 0.5"));
        assert!(json.contains("\"histogram_log2_ns\""));
        // Balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        let mut s = String::new();
        push_json_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        push_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
