//! Step 4 output — the executable signal-flow model.
//!
//! [`SignalFlowModel`] is the runnable counterpart of the generated C++
//! code: every assignment of the [`Assembly`](crate::Assembly) is compiled
//! once into flat stack-machine bytecode over a register file of `f64`
//! slots (current and delayed values), and [`SignalFlowModel::step`]
//! advances the model by one time step without any allocation, hashing, or
//! tree walking.

use std::collections::BTreeMap;

use expr::vm::{compile, Program};
use netlist::{QExpr, Quantity};

use crate::compact::affine_terms;
use crate::{AbstractError, Assembly};

/// How one update statement executes.
#[derive(Debug, Clone)]
enum Exec {
    /// Native constant-coefficient dot product (the common case for
    /// linear circuits — evaluates like compiled C++).
    Affine {
        constant: f64,
        terms: Vec<(u32, f64)>,
    },
    /// General stack-machine program (conditionals, functions, ...).
    Vm(Program),
}

/// An executable discrete-time signal-flow model.
///
/// Construct one through [`Abstraction`](crate::Abstraction) (the full
/// pipeline) or directly with [`SignalFlowModel::from_assembly`].
#[derive(Debug, Clone)]
pub struct SignalFlowModel {
    name: String,
    dt: f64,
    inputs: Vec<String>,
    input_slots: Vec<u32>,
    outputs: Vec<Quantity>,
    output_slots: Vec<u32>,
    assignments: Vec<(Quantity, QExpr)>,
    programs: Vec<(u32, Exec)>,
    /// `(base_slot, max_delay)` per tracked quantity, for the delay shift.
    shifts: Vec<(u32, u32)>,
    slot_of: BTreeMap<Quantity, (u32, u32)>,
    slots: Vec<f64>,
    scratch: Vec<f64>,
}

impl SignalFlowModel {
    /// Compiles an assembly into an executable model.
    ///
    /// `inputs` fixes the order in which [`SignalFlowModel::step`] expects
    /// input samples; every `Input` quantity referenced by the assembly
    /// must be listed.
    ///
    /// # Errors
    ///
    /// Returns [`AbstractError::UndefinedOutput`] if an assembly output has
    /// no assignment, or [`AbstractError::UnknownIdentifier`] if an input
    /// referenced by the equations is missing from `inputs`.
    pub fn from_assembly(
        name: impl Into<String>,
        assembly: &Assembly,
        inputs: &[String],
    ) -> Result<Self, AbstractError> {
        // Gather every referenced (quantity, max delay).
        let mut max_delay: BTreeMap<Quantity, u32> = BTreeMap::new();
        for i in inputs {
            max_delay.insert(Quantity::input(i.clone()), 0);
        }
        for (q, e) in &assembly.assignments {
            max_delay.entry(q.clone()).or_insert(0);
            e.visit_vars(&mut |v, _| {
                max_delay.entry(v.clone()).or_insert(0);
            });
            e.visit_vars(&mut |v, _| {
                let _ = v;
            });
        }
        for (_, e) in &assembly.assignments {
            collect_delays(e, &mut max_delay);
        }

        // Validate inputs: every Input quantity must be listed.
        for q in max_delay.keys() {
            if let Quantity::Input(n) = q {
                if !inputs.iter().any(|i| i == n) {
                    return Err(AbstractError::UnknownIdentifier { name: n.clone() });
                }
            }
        }

        // Slot layout: contiguous runs [current, prev1, prev2, ...].
        let mut slot_of: BTreeMap<Quantity, (u32, u32)> = BTreeMap::new();
        let mut next = 0u32;
        let mut shifts = Vec::new();
        for (q, &d) in &max_delay {
            slot_of.insert(q.clone(), (next, d));
            if d > 0 {
                shifts.push((next, d));
            }
            next += d + 1;
        }

        let resolve = |q: &Quantity, delay: u32| -> Option<u32> {
            let &(base, maxd) = slot_of.get(q)?;
            (delay <= maxd).then_some(base + delay)
        };

        let mut programs = Vec::with_capacity(assembly.assignments.len());
        for (q, e) in &assembly.assignments {
            let exec = match affine_terms(e) {
                Some((constant, terms)) => {
                    let mut resolved = Vec::with_capacity(terms.len());
                    for ((v, d), c) in terms {
                        let slot =
                            resolve(&v, d).ok_or_else(|| AbstractError::UnknownIdentifier {
                                name: v.to_string(),
                            })?;
                        resolved.push((slot, c));
                    }
                    Exec::Affine {
                        constant,
                        terms: resolved,
                    }
                }
                None => {
                    let prog = compile(e, &mut |v, d| resolve(v, d)).map_err(|err| {
                        match err {
                            expr::vm::CompileError::UnresolvedVariable(v) => {
                                AbstractError::UnknownIdentifier { name: v }
                            }
                            expr::vm::CompileError::UnresolvedAnalogOp => {
                                // Assemblies are discretized; reaching this
                                // is a pipeline bug, surfaced as an error.
                                AbstractError::NonlinearLoop {
                                    quantity: q.clone(),
                                }
                            }
                        }
                    })?;
                    Exec::Vm(prog)
                }
            };
            let slot = resolve(q, 0).expect("assigned quantities have slots");
            programs.push((slot, exec));
        }

        let input_slots = inputs
            .iter()
            .map(|n| resolve(&Quantity::input(n.clone()), 0).expect("inputs have slots"))
            .collect();
        let mut output_slots = Vec::with_capacity(assembly.outputs.len());
        for q in &assembly.outputs {
            let slot = resolve(q, 0).ok_or_else(|| AbstractError::UndefinedOutput {
                quantity: q.clone(),
            })?;
            output_slots.push(slot);
        }

        Ok(SignalFlowModel {
            name: name.into(),
            dt: assembly.dt,
            inputs: inputs.to_vec(),
            input_slots,
            outputs: assembly.outputs.clone(),
            output_slots,
            assignments: assembly.assignments.clone(),
            programs,
            shifts,
            slot_of,
            slots: vec![0.0; next as usize],
            scratch: Vec::new(),
        })
    }

    /// Model name (the source module's name by default).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Discretization time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Input names in the order [`SignalFlowModel::step`] expects.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// Output quantities in request order.
    pub fn output_quantities(&self) -> &[Quantity] {
        &self.outputs
    }

    /// The symbolic update assignments (used by the code generators and
    /// for inspection).
    pub fn assignments(&self) -> &[(Quantity, QExpr)] {
        &self.assignments
    }

    /// Advances the model by one time step.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    #[inline]
    pub fn step(&mut self, inputs: &[f64]) {
        assert_eq!(inputs.len(), self.input_slots.len(), "input arity mismatch");
        for (slot, &v) in self.input_slots.iter().zip(inputs) {
            self.slots[*slot as usize] = v;
        }
        for (slot, exec) in &self.programs {
            let v = match exec {
                Exec::Affine { constant, terms } => {
                    let mut acc = *constant;
                    for &(s, c) in terms {
                        acc += c * self.slots[s as usize];
                    }
                    acc
                }
                Exec::Vm(prog) => prog.eval(&self.slots, &mut self.scratch),
            };
            self.slots[*slot as usize] = v;
        }
        // Shift delay lines: prev_k ← prev_{k−1}.
        for &(base, maxd) in &self.shifts {
            let b = base as usize;
            for k in (1..=maxd as usize).rev() {
                self.slots[b + k] = self.slots[b + k - 1];
            }
        }
    }

    /// Value of output `i` after the last step.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output(&self, i: usize) -> f64 {
        self.slots[self.output_slots[i] as usize]
    }

    /// Number of outputs.
    pub fn output_count(&self) -> usize {
        self.output_slots.len()
    }

    /// Current value of an arbitrary tracked quantity.
    pub fn value(&self, q: &Quantity) -> Option<f64> {
        self.slot_of
            .get(q)
            .map(|&(base, _)| self.slots[base as usize])
    }

    /// Sets the current value of a tracked quantity (initial conditions —
    /// the paper's X₀).
    ///
    /// Returns `false` when the quantity is not tracked by this model.
    pub fn set_value(&mut self, q: &Quantity, v: f64) -> bool {
        if let Some(&(base, maxd)) = self.slot_of.get(q) {
            for k in 0..=maxd {
                self.slots[(base + k) as usize] = v;
            }
            true
        } else {
            false
        }
    }

    /// Resets all state (and delay lines) to zero.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Runs the model over a sampled input sequence, collecting one output
    /// sample (output 0) per step.
    ///
    /// # Panics
    ///
    /// Panics if the model has no outputs or if an item of `stimulus` has
    /// the wrong arity.
    pub fn run_collect(&mut self, stimulus: impl IntoIterator<Item = Vec<f64>>) -> Vec<f64> {
        let mut out = Vec::new();
        for sample in stimulus {
            self.step(&sample);
            out.push(self.output(0));
        }
        out
    }
}

fn collect_delays(e: &QExpr, max_delay: &mut BTreeMap<Quantity, u32>) {
    match e {
        expr::Expr::Prev(v, k) => {
            let entry = max_delay.entry(v.clone()).or_insert(0);
            *entry = (*entry).max(*k);
        }
        expr::Expr::Num(_) | expr::Expr::Var(_) => {}
        expr::Expr::Neg(a) | expr::Expr::Ddt(a) | expr::Expr::Idt(a) => {
            collect_delays(a, max_delay)
        }
        expr::Expr::Bin(_, a, b) => {
            collect_delays(a, max_delay);
            collect_delays(b, max_delay);
        }
        expr::Expr::Call(_, args) => args.iter().for_each(|a| collect_delays(a, max_delay)),
        expr::Expr::Cond(c, t, el) => {
            collect_delays(c, max_delay);
            collect_delays(t, max_delay);
            collect_delays(el, max_delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::Expr;

    /// Hand-built assembly: out = (u + k·prev(out)) / (1 + k).
    fn rc_assembly(k: f64, dt: f64) -> Assembly {
        let out = Quantity::node_v("out");
        let u = Quantity::input("in");
        let rhs = (Expr::var(u) + Expr::num(k) * Expr::prev(out.clone())) / Expr::num(1.0 + k);
        Assembly {
            assignments: vec![(out.clone(), rhs)],
            outputs: vec![out],
            dt,
        }
    }

    #[test]
    fn step_matches_recurrence() {
        let k = 4.0;
        let mut m =
            SignalFlowModel::from_assembly("rc", &rc_assembly(k, 1e-6), &["in".into()]).unwrap();
        let mut expect = 0.0;
        for _ in 0..50 {
            m.step(&[1.0]);
            expect = (1.0 + k * expect) / (1.0 + k);
            assert!((m.output(0) - expect).abs() < 1e-12);
        }
        assert_eq!(m.output_count(), 1);
        assert_eq!(m.dt(), 1e-6);
        assert_eq!(m.name(), "rc");
    }

    #[test]
    fn reset_and_initial_conditions() {
        let mut m =
            SignalFlowModel::from_assembly("rc", &rc_assembly(4.0, 1e-6), &["in".into()]).unwrap();
        let out = Quantity::node_v("out");
        assert!(m.set_value(&out, 0.5));
        assert_eq!(m.value(&out), Some(0.5));
        m.step(&[0.0]);
        // Decay from the initial condition: (0 + 4·0.5)/5 = 0.4.
        assert!((m.output(0) - 0.4).abs() < 1e-12);
        m.reset();
        assert_eq!(m.value(&out), Some(0.0));
        assert!(!m.set_value(&Quantity::var("ghost"), 1.0));
    }

    #[test]
    fn multi_delay_shifting() {
        // y = prev(x,1) − prev(x,2), x = u: y must be u₁ − u₂... through x.
        let x = Quantity::var("x");
        let y = Quantity::var("y");
        let asm = Assembly {
            assignments: vec![
                (x.clone(), Expr::var(Quantity::input("u"))),
                (
                    y.clone(),
                    Expr::prev(x.clone()) - Expr::prev_n(x.clone(), 2),
                ),
            ],
            outputs: vec![y],
            dt: 1.0,
        };
        let mut m = SignalFlowModel::from_assembly("d", &asm, &["u".into()]).unwrap();
        for (i, u) in [10.0, 20.0, 40.0, 80.0].iter().enumerate() {
            m.step(&[*u]);
            if i >= 2 {
                // prev1(x) − prev2(x) after feeding u(i): x lags are u(i−1), u(i−2).
                let want = [10.0, 20.0, 40.0, 80.0][i - 1] - [10.0, 20.0, 40.0, 80.0][i - 2];
                assert_eq!(m.output(0), want);
            }
        }
    }

    #[test]
    fn missing_input_is_reported() {
        let err = SignalFlowModel::from_assembly("rc", &rc_assembly(1.0, 1e-6), &[]).unwrap_err();
        assert!(matches!(err, AbstractError::UnknownIdentifier { name: n } if n == "in"));
    }

    #[test]
    fn output_without_assignment_is_reported() {
        let asm = Assembly {
            assignments: vec![],
            outputs: vec![Quantity::node_v("out")],
            dt: 1.0,
        };
        let err = SignalFlowModel::from_assembly("m", &asm, &[]).unwrap_err();
        assert!(matches!(
            err,
            AbstractError::UndefinedOutput { quantity: _ }
        ));
    }

    #[test]
    fn run_collect_gathers_samples() {
        let mut m =
            SignalFlowModel::from_assembly("rc", &rc_assembly(0.0, 1e-6), &["in".into()]).unwrap();
        // k = 0 ⇒ out = u instantly.
        let samples = m.run_collect(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(samples, vec![1.0, 2.0, 3.0]);
    }
}
