//! Step 2 — Enrichment (§IV-B, Algorithm 1 of the paper).
//!
//! Takes the dipole relations and the circuit graph from acquisition, adds
//! Kirchhoff's current laws (NodalAnalysis), Kirchhoff's voltage laws
//! (MeshAnalysis) and branch-voltage definitions, then — exactly as
//! Algorithm 1's inner loop does — solves every relation for each of its
//! terms, inserting all solved variants into the equation table as one
//! *dependency class* (the circular `nextDependent` chain of Figure 5).
//!
//! Terms under a `ddt`/`idt` operator are not solvable by the linear solver
//! and are skipped; the derivative is resolved later, during assembly
//! (`ResolveDerivative` in Algorithm 2).
//!
//! Worst-case complexity matches the paper: O(|N|²) for KCL, O(|N|³) for
//! KVL, and O(|B|²) for the solving loop.

use expr::{solve_linear, Expr};
use netlist::{
    kcl_relations, kvl_relations, vdef_relations, Equation, EquationTable, NodeId, Origin,
    Quantity, Relation,
};

use crate::{AbstractError, AcquiredModel};

/// Options controlling enrichment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnrichOptions {
    /// Also generate Kirchhoff voltage laws over fundamental loops (the
    /// paper's MeshAnalysis). Because this crate references every branch
    /// voltage to node potentials (`vdef` relations), KVL equations are
    /// *linearly dependent* with them: including both lets assembly pick a
    /// dependent equation subset, which is only detected as a degenerate
    /// (zero-coefficient) solve at the output and forces large backtracking
    /// searches. They are therefore off by default and exist for
    /// experimentation and paper fidelity.
    pub include_kvl: bool,
}

/// Builds the enriched equation table for a conservative model with
/// default options (no mesh analysis; see [`EnrichOptions`]).
///
/// # Errors
///
/// * [`AbstractError::Netlist`] when the circuit has no ground or is
///   disconnected.
pub fn enrich(model: &AcquiredModel) -> Result<EquationTable, AbstractError> {
    enrich_with(model, EnrichOptions::default())
}

/// Builds the enriched equation table with explicit [`EnrichOptions`].
///
/// Class insertion order — dipoles, branch-voltage definitions, KCL, (KVL),
/// signal-flow definitions — also fixes the deterministic fetch preference
/// used by assembly.
///
/// # Errors
///
/// * [`AbstractError::Netlist`] when the circuit has no ground or is
///   disconnected.
pub fn enrich_with(
    model: &AcquiredModel,
    options: EnrichOptions,
) -> Result<EquationTable, AbstractError> {
    let mut relations = conservative_relations(model)?;
    if options.include_kvl {
        let root = analysis_root(model).expect("checked by conservative_relations");
        relations.extend(kvl_relations(&model.graph, root));
    }

    let mut table = EquationTable::new();
    for rel in relations {
        let members = solve_for_each_term(&rel);
        table.insert_class(members, rel.origin, rel.label);
    }

    // Signal-flow variable definitions enter as single-member classes: they
    // are explicit assignments, invertible in one direction only.
    for (name, def) in &model.folded_vars {
        let lhs = Quantity::var(name.clone());
        table.insert_class(
            vec![Equation {
                lhs: lhs.clone(),
                rhs: def.clone(),
                origin: Origin::SignalFlow,
            }],
            Origin::SignalFlow,
            format!("var {name}"),
        );
    }
    Ok(table)
}

/// Builds the full conservative relation set for a model: its dipole
/// equations, branch-voltage definitions (with input-port potentials
/// folded to input leaves and grounds to zero), and Kirchhoff current laws
/// at internal nodes. This is both the seed of [`enrich_with`] and the
/// complete DAE system the reference simulator (`amsim`) resolves.
///
/// # Errors
///
/// * [`AbstractError::Netlist`] when the circuit has no ground or is
///   disconnected.
pub fn conservative_relations(model: &AcquiredModel) -> Result<Vec<Relation>, AbstractError> {
    let graph = &model.graph;
    let root = model
        .grounds
        .iter()
        .copied()
        .min()
        .ok_or(AbstractError::Netlist(netlist::NetlistError::NoGround))?;
    graph.check_connected(root)?;

    // Node potentials of input-port nodes must become input leaves.
    let input_names: Vec<&str> = model.inputs.iter().map(String::as_str).collect();
    let map_inputs = |r: Relation| -> Relation {
        let zero = r.zero.map_vars(&mut |q: &Quantity| match q {
            Quantity::NodeV(n) if input_names.contains(&n.as_str()) => Quantity::input(n.clone()),
            other => other.clone(),
        });
        Relation::new(zero, r.origin, r.label)
    };

    let mut relations: Vec<Relation> = Vec::new();
    relations.extend(model.relations.iter().cloned());
    relations.extend(
        vdef_relations(graph, &model.grounds)
            .into_iter()
            .map(map_inputs),
    );
    let mut excluded = model.grounds.clone();
    excluded.extend(model.input_nodes.iter().copied());
    relations.extend(kcl_relations(graph, &excluded));
    Ok(relations)
}

/// The inner loop of Algorithm 1: one solved variant per solvable term.
///
/// Signal-flow variables are never solved for here: they are *defined* by
/// their assignments (single-member SignalFlow classes), and inverting a
/// dipole equation to define one would shadow that definition.
fn solve_for_each_term(rel: &Relation) -> Vec<Equation> {
    let zero = &rel.zero;
    let mut members = Vec::new();
    for q in zero.current_variables() {
        if q.is_input() || matches!(q, Quantity::Var(_)) {
            continue;
        }
        if let Some(rhs) = solve_linear(zero, &Expr::num(0.0), &q) {
            members.push(Equation {
                lhs: q,
                rhs,
                origin: rel.origin,
            });
        }
    }
    members
}

/// Convenience: the ground node chosen as analysis root.
pub fn analysis_root(model: &AcquiredModel) -> Option<NodeId> {
    model.grounds.iter().copied().min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::acquire;
    use vams_parser::parse_module;

    fn rc1() -> AcquiredModel {
        let m = parse_module(
            "module rc(in, out);
               input in; output out;
               parameter real R = 5k;
               parameter real C = 25n;
               electrical in, out, gnd;
               ground gnd;
               branch (in, out) res;
               branch (out, gnd) cap;
               analog begin
                 V(res) <+ R * I(res);
                 I(cap) <+ C * ddt(V(cap));
               end
             endmodule",
        )
        .unwrap();
        acquire(&m).unwrap()
    }

    #[test]
    fn rc1_table_shape() {
        let model = rc1();
        let table = enrich(&model).unwrap();
        // Classes: 2 dipoles + 2 vdefs + 1 KCL (node out) + 0 KVL.
        assert_eq!(table.class_count(), 5);
        // Resistor dipole solves both ways; capacitor only for the current.
        let res_cls = table
            .class_ids()
            .find(|&c| table.class_info(c).1.contains("V[res]"))
            .unwrap();
        assert_eq!(table.class_members(res_cls).len(), 2);
        let cap_cls = table
            .class_ids()
            .find(|&c| table.class_info(c).1.contains("I[cap]"))
            .unwrap();
        let cap_members = table.class_members(cap_cls);
        assert_eq!(cap_members.len(), 1, "ddt term is not invertible here");
        assert_eq!(cap_members[0].lhs, Quantity::branch_i("cap"));
    }

    #[test]
    fn input_potentials_become_inputs() {
        let model = rc1();
        let table = enrich(&model).unwrap();
        // No equation may define the input, and references to the input
        // node must appear as Input quantities.
        assert!(table.fetch(&Quantity::node_v("in")).is_none());
        assert!(table.fetch(&Quantity::input("in")).is_none());
        let (eq, _) = table.fetch(&Quantity::branch_v("res")).unwrap();
        // One of the variants defines V[res]; the vdef one references in:in.
        let found_input = table
            .candidates(&Quantity::branch_v("res"))
            .iter()
            .any(|(e, _)| e.rhs.variables().iter().any(Quantity::is_input));
        assert!(found_input, "vdef variant must reference the input");
        let _ = eq;
    }

    #[test]
    fn kcl_excludes_input_and_ground_nodes() {
        let model = rc1();
        let table = enrich(&model).unwrap();
        let kcl_classes: Vec<_> = table
            .class_ids()
            .filter(|&c| table.class_info(c).0 == Origin::Kcl)
            .collect();
        assert_eq!(kcl_classes.len(), 1);
        assert!(table.class_info(kcl_classes[0]).1.contains("out"));
    }

    #[test]
    fn no_ground_is_an_error() {
        let m = parse_module(
            "module m(o); output o; electrical o, n;
             branch (o, n) b;
             analog V(b) <+ 1.0;
             endmodule",
        )
        .unwrap();
        let model = acquire(&m).unwrap();
        assert!(matches!(
            enrich(&model).unwrap_err(),
            AbstractError::Netlist(netlist::NetlistError::NoGround)
        ));
    }

    #[test]
    fn signal_flow_vars_get_classes() {
        let m = parse_module(
            "module m(i, o); input i; output o;
             electrical i, o, gnd; ground gnd;
             real y;
             analog begin
               y = 3 * V(i, gnd);
               V(o, gnd) <+ y;
             end
             endmodule",
        )
        .unwrap();
        let model = acquire(&m).unwrap();
        let table = enrich(&model).unwrap();
        let (eq, _) = table.fetch(&Quantity::var("y")).unwrap();
        assert_eq!(eq.origin, Origin::SignalFlow);
    }

    #[test]
    fn kvl_classes_appear_for_loops_when_requested() {
        // in → n via two parallel branches + cap to ground forms a loop.
        let m = parse_module(
            "module m(i, o); input i; output o;
             electrical i, o, gnd; ground gnd;
             branch (i, o) r1;
             branch (i, o) r2;
             branch (o, gnd) c;
             analog begin
               V(r1) <+ 1k * I(r1);
               V(r2) <+ 2k * I(r2);
               I(c) <+ 1n * ddt(V(c));
             end
             endmodule",
        )
        .unwrap();
        let model = acquire(&m).unwrap();
        assert!(
            enrich(&model)
                .unwrap()
                .class_ids()
                .all(|c| enrich(&model).unwrap().class_info(c).0 != Origin::Kvl),
            "KVL off by default"
        );
        let table = enrich_with(&model, EnrichOptions { include_kvl: true }).unwrap();
        let kvl: Vec<_> = table
            .class_ids()
            .filter(|&c| table.class_info(c).0 == Origin::Kvl)
            .collect();
        assert_eq!(kvl.len(), 1, "one fundamental loop");
        // The loop relates V[r1] and V[r2]; both variants exist.
        let members = table.class_members(kvl[0]);
        assert_eq!(members.len(), 2);
    }
}
