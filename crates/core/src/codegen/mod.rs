//! Step 4 — Code generation (§IV-D).
//!
//! Emits the elaborated update equations as compilable source in the
//! paper's three target languages:
//!
//! * [`cpp::generate`] — plain C++ (the fastest target of Tables I–III);
//! * [`systemc_de::generate`] — a SystemC discrete-event module clocked at
//!   the discretization step;
//! * [`systemc_tdf::generate`] — a SystemC-AMS timed-data-flow module.
//!
//! All three share one expression emitter, so the numerical behaviour of
//! the generated code is identical across targets; only the wrapping
//! model-of-computation differs, exactly as in the paper's experiments.

pub mod cpp;
pub mod systemc_de;
pub mod systemc_tdf;

use expr::{BinOp, Expr, Func};
use netlist::{QExpr, Quantity};

/// Renders a quantity as a C++ identifier; delayed values get a `_p{k}`
/// suffix.
pub(crate) fn cpp_name(q: &Quantity, delay: u32) -> String {
    if delay == 0 {
        q.mangle()
    } else {
        format!("{}_p{delay}", q.mangle())
    }
}

/// Emits a C++ expression for a resolved (discretization-free) tree.
///
/// # Panics
///
/// Panics if the expression still contains `ddt`/`idt`; assemblies are
/// discretized before reaching code generation.
pub(crate) fn cpp_expr(e: &QExpr) -> String {
    match e {
        Expr::Num(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v:e}")
            }
        }
        Expr::Var(q) => cpp_name(q, 0),
        Expr::Prev(q, k) => cpp_name(q, *k),
        Expr::Neg(a) => format!("-({})", cpp_expr(a)),
        Expr::Bin(op, a, b) => {
            let (sa, sb) = (cpp_expr(a), cpp_expr(b));
            match op {
                BinOp::Add => format!("({sa} + {sb})"),
                BinOp::Sub => format!("({sa} - {sb})"),
                BinOp::Mul => format!("({sa} * {sb})"),
                BinOp::Div => format!("({sa} / {sb})"),
                BinOp::Lt => format!("(double)({sa} < {sb})"),
                BinOp::Le => format!("(double)({sa} <= {sb})"),
                BinOp::Gt => format!("(double)({sa} > {sb})"),
                BinOp::Ge => format!("(double)({sa} >= {sb})"),
                BinOp::Eq => format!("(double)({sa} == {sb})"),
                BinOp::Ne => format!("(double)({sa} != {sb})"),
                BinOp::And => format!("(double)(({sa} != 0.0) && ({sb} != 0.0))"),
                BinOp::Or => format!("(double)(({sa} != 0.0) || ({sb} != 0.0))"),
            }
        }
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(cpp_expr).collect();
            let name = match f {
                Func::Exp => "std::exp",
                Func::Ln => "std::log",
                Func::Log10 => "std::log10",
                Func::Sin => "std::sin",
                Func::Cos => "std::cos",
                Func::Tan => "std::tan",
                Func::Sinh => "std::sinh",
                Func::Cosh => "std::cosh",
                Func::Tanh => "std::tanh",
                Func::Atan => "std::atan",
                Func::Sqrt => "std::sqrt",
                Func::Abs => "std::fabs",
                Func::Floor => "std::floor",
                Func::Ceil => "std::ceil",
                Func::Min => "std::fmin",
                Func::Max => "std::fmax",
                Func::Pow => "std::pow",
            };
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Ddt(_) | Expr::Idt(_) => {
            panic!("codegen requires discretized expressions (ddt/idt found)")
        }
        Expr::Cond(c, t, el) => format!(
            "(({}) != 0.0 ? ({}) : ({}))",
            cpp_expr(c),
            cpp_expr(t),
            cpp_expr(el)
        ),
    }
}

/// Everything a code generator needs about the model: state variables with
/// their maximum delays, update statements, and the delay-shift sequence.
pub(crate) struct Layout {
    /// Each tracked `(quantity, max delay)` needing member variables.
    pub vars: Vec<(Quantity, u32)>,
    /// `(lhs, rhs)` update statements in evaluation order.
    pub updates: Vec<(Quantity, QExpr)>,
    /// Input quantity order.
    pub inputs: Vec<Quantity>,
}

impl Layout {
    pub(crate) fn new(model: &crate::SignalFlowModel) -> Layout {
        use std::collections::BTreeMap;
        let mut delays: BTreeMap<Quantity, u32> = BTreeMap::new();
        let inputs: Vec<Quantity> = model
            .input_names()
            .iter()
            .map(|n| Quantity::input(n.clone()))
            .collect();
        for q in &inputs {
            delays.insert(q.clone(), 0);
        }
        for (q, e) in model.assignments() {
            delays.entry(q.clone()).or_insert(0);
            e.visit_vars(&mut |v, _| {
                delays.entry(v.clone()).or_insert(0);
            });
            fn scan(e: &QExpr, delays: &mut BTreeMap<Quantity, u32>) {
                match e {
                    Expr::Prev(v, k) => {
                        let d = delays.entry(v.clone()).or_insert(0);
                        *d = (*d).max(*k);
                    }
                    Expr::Num(_) | Expr::Var(_) => {}
                    Expr::Neg(a) | Expr::Ddt(a) | Expr::Idt(a) => scan(a, delays),
                    Expr::Bin(_, a, b) => {
                        scan(a, delays);
                        scan(b, delays);
                    }
                    Expr::Call(_, args) => args.iter().for_each(|a| scan(a, delays)),
                    Expr::Cond(c, t, el) => {
                        scan(c, delays);
                        scan(t, delays);
                        scan(el, delays);
                    }
                }
            }
            scan(e, &mut delays);
        }
        Layout {
            vars: delays.into_iter().collect(),
            updates: model.assignments().to_vec(),
            inputs,
        }
    }

    /// Emits the member-variable declarations.
    pub(crate) fn member_decls(&self, indent: &str) -> String {
        let mut out = String::new();
        for (q, maxd) in &self.vars {
            for k in 0..=*maxd {
                out.push_str(&format!("{indent}double {} = 0.0;\n", cpp_name(q, k)));
            }
        }
        out
    }

    /// Emits the update statements followed by the delay shifts.
    pub(crate) fn step_body(&self, indent: &str) -> String {
        let mut out = String::new();
        for (q, e) in &self.updates {
            out.push_str(&format!("{indent}{} = {};\n", cpp_name(q, 0), cpp_expr(e)));
        }
        for (q, maxd) in &self.vars {
            for k in (1..=*maxd).rev() {
                out.push_str(&format!(
                    "{indent}{} = {};\n",
                    cpp_name(q, k),
                    cpp_name(q, k - 1)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_render_unambiguously() {
        let five: QExpr = Expr::num(5.0);
        assert_eq!(cpp_expr(&five), "5.0");
        let tiny: QExpr = Expr::num(2.5e-8);
        assert_eq!(cpp_expr(&tiny), "2.5e-8");
    }

    #[test]
    fn operators_and_functions_render() {
        let e: QExpr = Expr::call2(Func::Max, Expr::var(Quantity::var("x")), Expr::num(0.0))
            + Expr::call1(Func::Exp, Expr::prev(Quantity::var("x")));
        let s = cpp_expr(&e);
        assert_eq!(s, "(std::fmax(var_x, 0.0) + std::exp(var_x_p1))");
    }

    #[test]
    fn conditionals_guard_against_nonbool() {
        let e: QExpr = Expr::cond(
            Expr::bin(BinOp::Gt, Expr::var(Quantity::var("a")), Expr::num(1.0)),
            Expr::num(2.0),
            Expr::num(3.0),
        );
        assert_eq!(
            cpp_expr(&e),
            "(((double)(var_a > 1.0)) != 0.0 ? (2.0) : (3.0))"
        );
    }

    #[test]
    #[should_panic(expected = "discretized")]
    fn analog_ops_panic() {
        let e: QExpr = Expr::ddt(Expr::var(Quantity::var("x")));
        let _ = cpp_expr(&e);
    }
}
