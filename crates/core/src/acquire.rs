//! Step 1 — Acquisition (§IV-A of the paper).
//!
//! Parses the module's contribution statements into dipole [`Relation`]s
//! over electrical [`Quantity`] leaves, extracts the circuit graph
//! `G = (N, B)`, and collects the signal-flow part of the analog block
//! (assignments and conditionals) both as an ordered statement list (for
//! direct conversion) and as folded single-definition equations (for the
//! conservative abstraction to chain through).
//!
//! Complexity is O(|B|) in the number of contribution statements, as the
//! paper states.

use std::collections::{BTreeMap, HashMap, HashSet};

use expr::Expr;
use netlist::{Graph, NodeId, Origin, QExpr, Quantity, Relation};
use vams_ast::{Module, PortDir, Stmt, StmtKind, VamsExpr, VamsRef};

use crate::AbstractError;

/// A signal-flow statement with expressions already lowered to quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum SfStmt {
    /// `var = value;`
    Assign {
        /// Target variable name.
        var: String,
        /// Lowered right-hand side.
        value: QExpr,
    },
    /// `if (cond) ... else ...`
    If {
        /// Lowered condition.
        cond: QExpr,
        /// Then-arm statements.
        then_stmts: Vec<SfStmt>,
        /// Else-arm statements.
        else_stmts: Vec<SfStmt>,
    },
    /// A contribution whose target is driven directly by the signal-flow
    /// part (kept in order for the conversion path).
    Contribution {
        /// Target branch voltage/current.
        target: Quantity,
        /// Lowered right-hand side.
        value: QExpr,
    },
}

/// Everything the later pipeline steps need, extracted from one module.
#[derive(Debug, Clone)]
pub struct AcquiredModel {
    /// Module name.
    pub name: String,
    /// The electrical graph `G = (N, B)`.
    pub graph: Graph,
    /// Dipole relations (`expr = 0`), one per contribution statement.
    pub relations: Vec<Relation>,
    /// Ordered signal-flow statements (conversion path).
    pub signal_flow: Vec<SfStmt>,
    /// Final definition of each `real` variable, in first-assignment order,
    /// with earlier variable references substituted (abstraction path).
    pub folded_vars: Vec<(String, QExpr)>,
    /// Input port names, in declaration order.
    pub inputs: Vec<String>,
    /// Output port names, in declaration order.
    pub outputs: Vec<String>,
    /// Ground node ids.
    pub grounds: HashSet<NodeId>,
    /// Nodes attached to input ports (excluded from KCL).
    pub input_nodes: HashSet<NodeId>,
    /// Evaluated parameters.
    pub params: BTreeMap<String, f64>,
}

impl AcquiredModel {
    /// Whether the model has any conservative (dipole) content.
    pub fn is_conservative(&self) -> bool {
        !self.relations.is_empty()
    }
}

struct Ctx {
    params: BTreeMap<String, f64>,
    reals: HashSet<String>,
    inputs: HashSet<String>,
    grounds: HashSet<String>,
    /// node-pair → branch name, for `I(a,b)` lookups (orientation-sensitive).
    pair_branch: HashMap<(String, String), String>,
    branch_names: HashSet<String>,
    node_names: HashSet<String>,
}

impl Ctx {
    fn potential(&self, node: &str) -> Result<QExpr, AbstractError> {
        if self.grounds.contains(node) {
            Ok(Expr::num(0.0))
        } else if self.inputs.contains(node) {
            Ok(Expr::var(Quantity::input(node)))
        } else if self.node_names.contains(node) {
            Ok(Expr::var(Quantity::node_v(node)))
        } else {
            Err(AbstractError::UnknownIdentifier {
                name: node.to_string(),
            })
        }
    }

    fn lower_ref(&self, r: &VamsRef) -> Result<QExpr, AbstractError> {
        match r {
            VamsRef::Ident(name) => {
                if let Some(&v) = self.params.get(name) {
                    Ok(Expr::num(v))
                } else if self.reals.contains(name) {
                    Ok(Expr::var(Quantity::var(name)))
                } else {
                    Err(AbstractError::UnknownIdentifier { name: name.clone() })
                }
            }
            VamsRef::Potential(a, None) => {
                if self.branch_names.contains(a) {
                    Ok(Expr::var(Quantity::branch_v(a)))
                } else {
                    self.potential(a)
                }
            }
            VamsRef::Potential(a, Some(b)) => {
                Ok((self.potential(a)? - self.potential(b)?).simplified())
            }
            VamsRef::Flow(a, None) => {
                if self.branch_names.contains(a) {
                    Ok(Expr::var(Quantity::branch_i(a)))
                } else {
                    Err(AbstractError::NoSuchBranch {
                        from: a.clone(),
                        to: None,
                    })
                }
            }
            VamsRef::Flow(a, Some(b)) => {
                if let Some(name) = self.pair_branch.get(&(a.clone(), b.clone())) {
                    Ok(Expr::var(Quantity::branch_i(name)))
                } else if let Some(name) = self.pair_branch.get(&(b.clone(), a.clone())) {
                    Ok(-Expr::var(Quantity::branch_i(name)))
                } else {
                    Err(AbstractError::NoSuchBranch {
                        from: a.clone(),
                        to: Some(b.clone()),
                    })
                }
            }
        }
    }

    fn lower_expr(&self, e: &VamsExpr) -> Result<QExpr, AbstractError> {
        Ok(match e {
            Expr::Num(v) => Expr::Num(*v),
            Expr::Var(r) => self.lower_ref(r)?,
            Expr::Prev(..) => unreachable!("parser never produces Prev"),
            Expr::Neg(a) => -self.lower_expr(a)?,
            Expr::Bin(op, a, b) => Expr::bin(*op, self.lower_expr(a)?, self.lower_expr(b)?),
            Expr::Call(f, args) => Expr::Call(
                *f,
                args.iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Ddt(a) => Expr::ddt(self.lower_expr(a)?),
            Expr::Idt(a) => Expr::idt(self.lower_expr(a)?),
            Expr::Cond(c, t, el) => Expr::cond(
                self.lower_expr(c)?,
                self.lower_expr(t)?,
                self.lower_expr(el)?,
            ),
        })
    }
}

/// Runs acquisition on a parsed module.
///
/// # Errors
///
/// Fails on unknown identifiers, unresolvable parameters, flow accesses
/// that match no branch, conditional contributions, and malformed
/// topologies (duplicate branches, branches on undeclared nets).
pub fn acquire(module: &Module) -> Result<AcquiredModel, AbstractError> {
    // Parameters: fold defaults left to right, allowing references to
    // earlier parameters.
    let mut params: BTreeMap<String, f64> = BTreeMap::new();
    for p in &module.parameters {
        let lowered = p.default.map_vars(&mut |r: &VamsRef| r.clone());
        let value = lowered
            .eval(&mut |r: &VamsRef, _| match r {
                VamsRef::Ident(n) => params.get(n).copied(),
                _ => None,
            })
            .map_err(|_| AbstractError::UnresolvedParameter {
                name: p.name.clone(),
            })?;
        params.insert(p.name.clone(), value);
    }

    // Graph: all declared nets are nodes, all declared branches are edges.
    let mut graph = Graph::new();
    for name in module.net_names() {
        graph.ensure_node(name);
    }
    let mut pair_branch: HashMap<(String, String), String> = HashMap::new();
    let mut branch_names: HashSet<String> = HashSet::new();
    for b in &module.branches {
        let pos = graph
            .node_id(&b.pos)
            .ok_or_else(|| AbstractError::UnknownIdentifier {
                name: b.pos.clone(),
            })?;
        let neg = graph
            .node_id(&b.neg)
            .ok_or_else(|| AbstractError::UnknownIdentifier {
                name: b.neg.clone(),
            })?;
        graph.add_branch(&b.name, pos, neg)?;
        pair_branch
            .entry((b.pos.clone(), b.neg.clone()))
            .or_insert_with(|| b.name.clone());
        branch_names.insert(b.name.clone());
    }

    // Pre-scan contribution targets to create implicit branches for
    // node-pair accesses (`V(out, gnd) <+ ...` makes a source branch).
    let mut implicit_counter = 0usize;
    let mut scan_targets = |stmts: &[Stmt],
                            graph: &mut Graph,
                            pair_branch: &mut HashMap<(String, String), String>,
                            branch_names: &mut HashSet<String>|
     -> Result<(), AbstractError> {
        fn walk(
            stmts: &[Stmt],
            graph: &mut Graph,
            pair_branch: &mut HashMap<(String, String), String>,
            branch_names: &mut HashSet<String>,
            counter: &mut usize,
        ) -> Result<(), AbstractError> {
            for s in stmts {
                match &s.kind {
                    StmtKind::Contribution { target, .. } => {
                        if let VamsRef::Potential(a, Some(b)) | VamsRef::Flow(a, Some(b)) = target {
                            if !pair_branch.contains_key(&(a.clone(), b.clone()))
                                && !pair_branch.contains_key(&(b.clone(), a.clone()))
                            {
                                let name = format!("src{counter}_{a}_{b}");
                                *counter += 1;
                                let pos = graph.node_id(a).ok_or_else(|| {
                                    AbstractError::UnknownIdentifier { name: a.clone() }
                                })?;
                                let neg = graph.node_id(b).ok_or_else(|| {
                                    AbstractError::UnknownIdentifier { name: b.clone() }
                                })?;
                                graph.add_branch(&name, pos, neg)?;
                                pair_branch.insert((a.clone(), b.clone()), name.clone());
                                branch_names.insert(name);
                            }
                        }
                    }
                    StmtKind::If {
                        then_stmts,
                        else_stmts,
                        ..
                    } => {
                        walk(then_stmts, graph, pair_branch, branch_names, counter)?;
                        walk(else_stmts, graph, pair_branch, branch_names, counter)?;
                    }
                    StmtKind::Assign { .. } => {}
                }
            }
            Ok(())
        }
        walk(
            stmts,
            graph,
            pair_branch,
            branch_names,
            &mut implicit_counter,
        )
    };
    scan_targets(
        &module.analog,
        &mut graph,
        &mut pair_branch,
        &mut branch_names,
    )?;

    let inputs: Vec<String> = module
        .ports
        .iter()
        .filter(|p| p.dir == PortDir::Input)
        .map(|p| p.name.clone())
        .collect();
    let outputs: Vec<String> = module
        .ports
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .collect();

    let ctx = Ctx {
        params: params.clone(),
        reals: module.reals.iter().cloned().collect(),
        inputs: inputs.iter().cloned().collect(),
        grounds: module.grounds.iter().cloned().collect(),
        pair_branch,
        branch_names,
        node_names: module.net_names().map(str::to_string).collect(),
    };

    // Lower statements: top-level contributions become dipole relations;
    // everything else is signal flow.
    let mut relations = Vec::new();
    let mut signal_flow = Vec::new();
    lower_stmts(
        &module.analog,
        &ctx,
        false,
        &mut relations,
        &mut signal_flow,
    )?;

    let folded_vars = fold_vars(&signal_flow)?;

    let grounds: HashSet<NodeId> = module
        .grounds
        .iter()
        .filter_map(|g| graph.node_id(g))
        .collect();
    let input_nodes: HashSet<NodeId> = inputs.iter().filter_map(|p| graph.node_id(p)).collect();

    Ok(AcquiredModel {
        name: module.name.clone(),
        graph,
        relations,
        signal_flow,
        folded_vars,
        inputs,
        outputs,
        grounds,
        input_nodes,
        params,
    })
}

fn lower_stmts(
    stmts: &[Stmt],
    ctx: &Ctx,
    inside_if: bool,
    relations: &mut Vec<Relation>,
    sf: &mut Vec<SfStmt>,
) -> Result<(), AbstractError> {
    for s in stmts {
        match &s.kind {
            StmtKind::Contribution { target, value } => {
                if inside_if {
                    return Err(AbstractError::ConditionalContribution {
                        target: target.to_string(),
                    });
                }
                let (target_q, target_expr) = lower_target(target, ctx)?;
                let rhs = ctx.lower_expr(value)?;
                relations.push(Relation::new(
                    (target_expr - rhs.clone()).simplified(),
                    Origin::Dipole,
                    target_q.to_string(),
                ));
                sf.push(SfStmt::Contribution {
                    target: target_q,
                    value: rhs,
                });
            }
            StmtKind::Assign { name, value } => {
                if !ctx.reals.contains(name) {
                    return Err(AbstractError::UnknownIdentifier { name: name.clone() });
                }
                sf.push(SfStmt::Assign {
                    var: name.clone(),
                    value: ctx.lower_expr(value)?,
                });
            }
            StmtKind::If {
                cond,
                then_stmts,
                else_stmts,
            } => {
                let mut then_sf = Vec::new();
                let mut else_sf = Vec::new();
                lower_stmts(then_stmts, ctx, true, relations, &mut then_sf)?;
                lower_stmts(else_stmts, ctx, true, relations, &mut else_sf)?;
                sf.push(SfStmt::If {
                    cond: ctx.lower_expr(cond)?,
                    then_stmts: then_sf,
                    else_stmts: else_sf,
                });
            }
        }
    }
    Ok(())
}

/// Lowers a contribution target to its branch quantity plus the expression
/// form used on the relation's left side.
fn lower_target(target: &VamsRef, ctx: &Ctx) -> Result<(Quantity, QExpr), AbstractError> {
    let q = match target {
        VamsRef::Potential(a, None) if ctx.branch_names.contains(a) => Quantity::branch_v(a),
        VamsRef::Flow(a, None) if ctx.branch_names.contains(a) => Quantity::branch_i(a),
        VamsRef::Potential(a, Some(b)) => {
            let name = branch_for_pair(ctx, a, b)?;
            Quantity::branch_v(name)
        }
        VamsRef::Flow(a, Some(b)) => {
            let name = branch_for_pair(ctx, a, b)?;
            Quantity::branch_i(name)
        }
        other => {
            return Err(AbstractError::UnknownIdentifier {
                name: other.to_string(),
            });
        }
    };
    Ok((q.clone(), Expr::var(q)))
}

fn branch_for_pair(ctx: &Ctx, a: &str, b: &str) -> Result<String, AbstractError> {
    ctx.pair_branch
        .get(&(a.to_string(), b.to_string()))
        .or_else(|| ctx.pair_branch.get(&(b.to_string(), a.to_string())))
        .cloned()
        .ok_or_else(|| AbstractError::NoSuchBranch {
            from: a.to_string(),
            to: Some(b.to_string()),
        })
}

/// Folds sequential signal-flow assignments into one final definition per
/// variable, substituting earlier definitions so each result is
/// self-contained. Conditionals become `Cond` merges of the two arms.
fn fold_vars(stmts: &[SfStmt]) -> Result<Vec<(String, QExpr)>, AbstractError> {
    let mut order: Vec<String> = Vec::new();
    let mut defs: HashMap<String, QExpr> = HashMap::new();
    fold_into(stmts, &mut order, &mut defs)?;
    Ok(order
        .into_iter()
        .map(|v| {
            let d = defs.remove(&v).expect("ordered vars are defined");
            (v, d)
        })
        .collect())
}

fn fold_into(
    stmts: &[SfStmt],
    order: &mut Vec<String>,
    defs: &mut HashMap<String, QExpr>,
) -> Result<(), AbstractError> {
    for s in stmts {
        match s {
            SfStmt::Assign { var, value } => {
                let substituted = subst_vars(value, defs)?;
                if !defs.contains_key(var) {
                    order.push(var.clone());
                }
                defs.insert(var.clone(), substituted.simplified());
            }
            SfStmt::If {
                cond,
                then_stmts,
                else_stmts,
            } => {
                let cond = subst_vars(cond, defs)?;
                let mut then_defs = defs.clone();
                let mut else_defs = defs.clone();
                let mut then_order = Vec::new();
                let mut else_order = Vec::new();
                fold_into(then_stmts, &mut then_order, &mut then_defs)?;
                fold_into(else_stmts, &mut else_order, &mut else_defs)?;
                // Merge: every variable touched by either arm becomes a
                // conditional over the two arm values (falling back to the
                // pre-if value, which must exist for a well-formed model).
                let mut touched: Vec<String> = then_order;
                for v in else_order {
                    if !touched.contains(&v) {
                        touched.push(v);
                    }
                }
                for v in defs.keys() {
                    let changed =
                        then_defs.get(v) != defs.get(v) || else_defs.get(v) != defs.get(v);
                    if changed && !touched.contains(v) {
                        touched.push(v.clone());
                    }
                }
                for v in touched {
                    let before = defs.get(&v).cloned();
                    let tv = then_defs
                        .get(&v)
                        .cloned()
                        .or_else(|| before.clone())
                        .ok_or_else(|| AbstractError::UnknownIdentifier { name: v.clone() })?;
                    let ev = else_defs
                        .get(&v)
                        .cloned()
                        .or_else(|| before.clone())
                        .ok_or_else(|| AbstractError::UnknownIdentifier { name: v.clone() })?;
                    if !defs.contains_key(&v) {
                        order.push(v.clone());
                    }
                    let merged = if tv == ev {
                        tv
                    } else {
                        Expr::cond(cond.clone(), tv, ev).simplified()
                    };
                    defs.insert(v, merged);
                }
            }
            SfStmt::Contribution { .. } => {
                // Contributions do not define variables.
            }
        }
    }
    Ok(())
}

/// Replaces every `Var` leaf with its current definition; references to
/// variables never assigned are an error.
fn subst_vars(e: &QExpr, defs: &HashMap<String, QExpr>) -> Result<QExpr, AbstractError> {
    Ok(match e {
        Expr::Var(Quantity::Var(name)) => defs
            .get(name)
            .cloned()
            .ok_or_else(|| AbstractError::UnknownIdentifier { name: name.clone() })?,
        Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => e.clone(),
        Expr::Neg(a) => -subst_vars(a, defs)?,
        Expr::Bin(op, a, b) => Expr::bin(*op, subst_vars(a, defs)?, subst_vars(b, defs)?),
        Expr::Call(f, args) => Expr::Call(
            *f,
            args.iter()
                .map(|a| subst_vars(a, defs))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Ddt(a) => Expr::ddt(subst_vars(a, defs)?),
        Expr::Idt(a) => Expr::idt(subst_vars(a, defs)?),
        Expr::Cond(c, t, el) => Expr::cond(
            subst_vars(c, defs)?,
            subst_vars(t, defs)?,
            subst_vars(el, defs)?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vams_parser::parse_module;

    fn rc1_src() -> &'static str {
        "module rc(in, out);
           input in; output out;
           parameter real R = 5k;
           parameter real C = 25n;
           electrical in, out, gnd;
           ground gnd;
           branch (in, out) res;
           branch (out, gnd) cap;
           analog begin
             V(res) <+ R * I(res);
             I(cap) <+ C * ddt(V(cap));
           end
         endmodule"
    }

    #[test]
    fn acquires_rc_topology_and_relations() {
        let m = parse_module(rc1_src()).unwrap();
        let a = acquire(&m).unwrap();
        assert_eq!(a.graph.node_count(), 3);
        assert_eq!(a.graph.branch_count(), 2);
        assert_eq!(a.relations.len(), 2);
        assert!(a.is_conservative());
        assert_eq!(a.inputs, vec!["in"]);
        assert_eq!(a.outputs, vec!["out"]);
        assert_eq!(a.params["R"], 5000.0);
        // Resistor relation: V[res] − R·I[res] = 0.
        let r = &a.relations[0];
        let v = r
            .zero
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchV(n) if n == "res" => Some(10.0),
                Quantity::BranchI(n) if n == "res" => Some(0.002),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn parameter_chains_evaluate() {
        let m = parse_module(
            "module m(a); inout a; electrical a, gnd; ground gnd;
             parameter real R = 2k;
             parameter real G = 1 / R;
             analog V(a, gnd) <+ G;
             endmodule",
        )
        .unwrap();
        let a = acquire(&m).unwrap();
        assert_eq!(a.params["G"], 1.0 / 2000.0);
    }

    #[test]
    fn implicit_source_branch_created() {
        let m = parse_module(
            "module m(o); output o; electrical o, gnd; ground gnd;
             analog V(o, gnd) <+ 1.0;
             endmodule",
        )
        .unwrap();
        let a = acquire(&m).unwrap();
        assert_eq!(a.graph.branch_count(), 1);
        assert_eq!(a.relations.len(), 1);
    }

    #[test]
    fn node_pair_potentials_fold_ground() {
        let m = parse_module(
            "module m(i, o); input i; output o;
             electrical i, o, gnd; ground gnd;
             branch (i, o) b;
             analog V(b) <+ V(i, gnd) - V(o, gnd);
             endmodule",
        )
        .unwrap();
        let a = acquire(&m).unwrap();
        let vars = a.relations[0].zero.variables();
        // V(i,gnd) lowers to the input quantity, V(o,gnd) to a node potential.
        assert!(vars.contains(&Quantity::input("i")));
        assert!(vars.contains(&Quantity::node_v("o")));
        assert!(!vars.iter().any(|q| q.name() == "gnd"));
    }

    #[test]
    fn flow_pair_access_uses_existing_branch() {
        let m = parse_module(
            "module m(i); input i; electrical i, n, gnd; ground gnd;
             branch (i, n) b1;
             branch (n, gnd) b2;
             analog begin
               V(b2) <+ 10 * I(i, n);
               V(b1) <+ 5 * I(n, i);
             end
             endmodule",
        )
        .unwrap();
        let a = acquire(&m).unwrap();
        // Forward access resolves to +I[b1], reversed to −I[b1].
        let fwd = &a.relations[0].zero;
        assert!(fwd.variables().contains(&Quantity::branch_i("b1")));
        let rev = &a.relations[1].zero;
        let v = rev
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchV(n) if n == "b1" => Some(-10.0),
                Quantity::BranchI(n) if n == "b1" => Some(2.0),
                _ => None,
            })
            .unwrap();
        // V[b1] − 5·(−I[b1]) = −10 + 10 = 0.
        assert_eq!(v, 0.0);
    }

    #[test]
    fn signal_flow_folding_with_clamp() {
        let m = parse_module(
            "module clamp(i, o); input i; output o;
             electrical i, o, gnd; ground gnd;
             parameter real lim = 2.5;
             real y;
             analog begin
               y = 2 * V(i, gnd);
               if (y > lim) y = lim;
               else if (y < -lim) y = -lim;
               V(o, gnd) <+ y;
             end
             endmodule",
        )
        .unwrap();
        let a = acquire(&m).unwrap();
        assert_eq!(a.folded_vars.len(), 1);
        let (name, def) = &a.folded_vars[0];
        assert_eq!(name, "y");
        // The folded definition must clamp: check at u = 5 → 2.5, u = 1 → 2,
        // u = −5 → −2.5.
        for (u, want) in [(5.0, 2.5), (1.0, 2.0), (-5.0, -2.5)] {
            let got = def
                .eval(&mut |q: &Quantity, _| {
                    matches!(q, Quantity::Input(n) if n == "i").then_some(u)
                })
                .unwrap();
            assert_eq!(got, want, "clamp at input {u}");
        }
    }

    #[test]
    fn conditional_contribution_rejected() {
        let m = parse_module(
            "module m(o); output o; electrical o, gnd; ground gnd;
             analog begin
               if (1) V(o, gnd) <+ 1.0;
             end
             endmodule",
        )
        .unwrap();
        let err = acquire(&m).unwrap_err();
        assert!(matches!(
            err,
            AbstractError::ConditionalContribution { target: _ }
        ));
    }

    #[test]
    fn unknown_identifier_reported() {
        let m = parse_module(
            "module m(o); output o; electrical o, gnd; ground gnd;
             analog V(o, gnd) <+ mystery;
             endmodule",
        )
        .unwrap();
        assert_eq!(
            acquire(&m).unwrap_err(),
            AbstractError::UnknownIdentifier {
                name: "mystery".into()
            }
        );
    }

    #[test]
    fn flow_access_without_branch_rejected() {
        let m = parse_module(
            "module m(o); output o; electrical o, n, gnd; ground gnd;
             analog V(o, gnd) <+ I(o, n);
             endmodule",
        )
        .unwrap();
        assert!(matches!(
            acquire(&m).unwrap_err(),
            AbstractError::NoSuchBranch { from: _, to: _ }
        ));
    }

    #[test]
    fn variable_use_before_assignment_rejected() {
        let m = parse_module(
            "module m(o); output o; electrical o, gnd; ground gnd;
             real y;
             analog begin
               y = y + 1;
               V(o, gnd) <+ y;
             end
             endmodule",
        )
        .unwrap();
        assert!(matches!(
            acquire(&m).unwrap_err(),
            AbstractError::UnknownIdentifier { name: _ }
        ));
    }
}
