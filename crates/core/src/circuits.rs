//! The paper's benchmark circuits (§V-A, Figure 8) as Verilog-AMS sources,
//! plus the square-wave stimulus used throughout the evaluation.
//!
//! Circuit parameters follow the paper exactly:
//!
//! * **RCn** — a cascade of `n` RC stages, R = 5 kΩ, C = 25 nF;
//! * **2IN** — the two-input summing amplifier of Figure 8(a),
//!   R1 = 3 kΩ, R2 = 14 kΩ, R3 = 10 kΩ;
//! * **OA** — the operational amplifier of Figure 8(b), R1 = 400 Ω,
//!   R2 = 1.6 kΩ, C1 = 40 nF, Rin = 1 MΩ, Rout = 20 Ω.
//!
//! The op-amp gain stage is modeled as a voltage-controlled voltage source
//! with open-loop gain `A₀ = 100k`, the conventional first-order macro
//! model; the paper does not print its internal schematic.

use std::fmt::Write as _;

/// Square-wave stimulus (the paper uses a 1 ms period over ±amplitude).
///
/// # Example
///
/// ```
/// use amsvp_core::circuits::SquareWave;
///
/// let sq = SquareWave::paper(); // 1 ms period, 0/1 V
/// assert_eq!(sq.value(0.0), 1.0);
/// assert_eq!(sq.value(0.6e-3), 0.0);
/// assert_eq!(sq.value(1.1e-3), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    /// Full period in seconds.
    pub period: f64,
    /// Level during the first half period.
    pub high: f64,
    /// Level during the second half period.
    pub low: f64,
}

impl SquareWave {
    /// The paper's stimulus: 1 ms period, toggling between 0 V and 1 V.
    pub fn paper() -> Self {
        SquareWave {
            period: 1e-3,
            high: 1.0,
            low: 0.0,
        }
    }

    /// Sample the wave at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        let phase = (t / self.period).rem_euclid(1.0);
        if phase < 0.5 {
            self.high
        } else {
            self.low
        }
    }

    /// Iterator over `n` samples spaced `dt` apart, starting at `t = 0`.
    pub fn samples(&self, dt: f64, n: usize) -> impl Iterator<Item = f64> + '_ {
        (0..n).map(move |i| self.value(i as f64 * dt))
    }
}

/// A deterministic input waveform sampled at absolute time.
///
/// Implemented by [`SquareWave`] (the paper's stimulus) and
/// [`PiecewiseConstant`] (seeded-random levels for differential testing);
/// the virtual-platform TDF sources and the sweep engine are generic over
/// it so the same cluster wiring drives any input shape.
pub trait Stimulus {
    /// Sample the waveform at time `t` (seconds).
    fn value(&self, t: f64) -> f64;
}

impl Stimulus for SquareWave {
    fn value(&self, t: f64) -> f64 {
        SquareWave::value(self, t)
    }
}

impl<T: Stimulus + ?Sized> Stimulus for &T {
    fn value(&self, t: f64) -> f64 {
        (**self).value(t)
    }
}

/// Piecewise-constant waveform: level `k` holds over
/// `[k·hold, (k+1)·hold)`, repeating from the start after the last
/// segment. Built from a seeded PRNG ([`PiecewiseConstant::seeded`]) it
/// gives reproducible random stimuli that exercise input shapes the fixed
/// square wave never does.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseConstant {
    /// Duration of each segment in seconds.
    pub hold: f64,
    /// Segment levels, cycled over.
    pub levels: Vec<f64>,
}

impl PiecewiseConstant {
    /// Builds `segments` uniform random levels in `[lo, hi)` from an
    /// [`XorShift64`] stream seeded with `seed` — same seed, same wave.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `hold` is not positive and finite.
    pub fn seeded(seed: u64, segments: usize, hold: f64, lo: f64, hi: f64) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(hold.is_finite() && hold > 0.0, "hold must be positive");
        let mut rng = XorShift64::new(seed);
        let levels = (0..segments)
            .map(|_| lo + (hi - lo) * rng.next_f64())
            .collect();
        PiecewiseConstant { hold, levels }
    }

    /// Sample the waveform at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        let k = (t / self.hold).rem_euclid(self.levels.len() as f64) as usize;
        self.levels[k.min(self.levels.len() - 1)]
    }
}

impl Stimulus for PiecewiseConstant {
    fn value(&self, t: f64) -> f64 {
        PiecewiseConstant::value(self, t)
    }
}

/// The xorshift64* PRNG — the same tiny deterministic generator the
/// workspace property tests use, exposed here so stimulus construction and
/// scenario sampling share one implementation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the stream (a zero seed is remapped to a fixed nonzero one,
    /// since xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next draw mapped uniformly to `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Verilog-AMS source of an `n`-stage RC ladder (the paper's RCn).
///
/// The conservative MNA system has `5n` unknowns (per stage: two branch
/// voltages, two branch currents, one node), so the family doubles as
/// the scaling axis for the factorization backends: below the sparse
/// threshold (RC20 and smaller) `SolverKind::Auto` keeps the dense LU,
/// while RC30 and up resolve to the sparse pattern-reusing backend
/// (RC500 — 2500 unknowns — is the `sparse_smoke` headline benchmark).
/// Internal nets are named `n1..n{n-1}`, observable as e.g. `V(n3)`;
/// each stage contributes a τ = RC = 125 µs, and the signal diffuses, so
/// `V(out)` of a long ladder needs ~`n²·RC/2` to respond — observe a
/// near-input net when benchmarking short transients.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rc_ladder(n: usize) -> String {
    assert!(n >= 1, "RC ladder needs at least one stage");
    let mut src = String::new();
    let _ = writeln!(src, "module rc{n}(in, out);");
    let _ = writeln!(src, "  input in; output out;");
    let _ = writeln!(src, "  parameter real R = 5k;");
    let _ = writeln!(src, "  parameter real C = 25n;");
    let mut nets = vec!["in".to_string()];
    for i in 1..n {
        nets.push(format!("n{i}"));
    }
    nets.push("out".to_string());
    nets.push("gnd".to_string());
    let _ = writeln!(src, "  electrical {};", nets.join(", "));
    let _ = writeln!(src, "  ground gnd;");
    for i in 0..n {
        let a = &nets[i];
        let b = &nets[i + 1];
        let _ = writeln!(src, "  branch ({a}, {b}) r{i};");
        let _ = writeln!(src, "  branch ({b}, gnd) c{i};");
    }
    let _ = writeln!(src, "  analog begin");
    for i in 0..n {
        let _ = writeln!(src, "    V(r{i}) <+ R * I(r{i});");
        let _ = writeln!(src, "    I(c{i}) <+ C * ddt(V(c{i}));");
    }
    let _ = writeln!(src, "  end");
    let _ = writeln!(src, "endmodule");
    src
}

/// Verilog-AMS source of the two-input summing amplifier (2IN,
/// Figure 8(a)): ideal-ish op-amp with R1/R2 input legs and R3 feedback.
///
/// Expected DC behaviour: `out ≈ −(R3/R1·in1 + R3/R2·in2)`.
pub fn two_inputs() -> String {
    "module two_inputs(in1, in2, out);
  input in1; input in2; output out;
  parameter real R1 = 3k;
  parameter real R2 = 14k;
  parameter real R3 = 10k;
  parameter real A0 = 100k;
  electrical in1, in2, inm, out, gnd;
  ground gnd;
  branch (in1, inm) b1;
  branch (in2, inm) b2;
  branch (inm, out) b3;
  analog begin
    V(b1) <+ R1 * I(b1);
    V(b2) <+ R2 * I(b2);
    V(b3) <+ R3 * I(b3);
    V(out, gnd) <+ -A0 * V(inm, gnd);
  end
endmodule
"
    .to_string()
}

/// Verilog-AMS source of the operational amplifier circuit (OA,
/// Figure 8(b)): inverting configuration with a first-order op-amp macro
/// model (input resistance, VCVS gain stage, output resistance, load
/// capacitance).
///
/// Expected DC behaviour: `out ≈ −(R2/R1)·in = −4·in`.
pub fn opamp() -> String {
    "module opamp(in, out);
  input in; output out;
  parameter real R1 = 400;
  parameter real R2 = 1.6k;
  parameter real C1 = 40n;
  parameter real Rin = 1M;
  parameter real Rout = 20;
  parameter real A0 = 100k;
  electrical in, inm, x, out, gnd;
  ground gnd;
  branch (in, inm) br1;
  branch (inm, out) br2;
  branch (inm, gnd) brin;
  branch (x, gnd) bsrc;
  branch (x, out) brout;
  branch (out, gnd) bc1;
  analog begin
    V(br1) <+ R1 * I(br1);
    V(br2) <+ R2 * I(br2);
    V(brin) <+ Rin * I(brin);
    V(bsrc) <+ -A0 * V(inm, gnd);
    V(brout) <+ Rout * I(brout);
    I(bc1) <+ C1 * ddt(V(bc1));
  end
endmodule
"
    .to_string()
}

/// Verilog-AMS source of a stiff diode clamp: `in —R— out`, with an
/// exponential diode (sharp thermal voltage `VT = 5 mV`) and a small
/// capacitor from `out` to ground.
///
/// The fixture is deliberately hostile to fixed-step Newton: a full-scale
/// input edge at `dt = 1e-4` puts the first iterate far up the diode
/// exponential, and the undamped iteration walks back only ~`VT` per
/// iteration — well past any sane iteration cap. Backward Euler at a
/// *small* step stiffens the capacitor companion conductance `C/dt`,
/// which bounds how far `out` can move per solve, so adaptive
/// retry/backoff rescues exactly this circuit while plain fixed-`dt`
/// stepping fails with `NoConvergence`.
pub fn diode_clamp() -> String {
    "module diode_clamp(in, out);
  input in; output out;
  parameter real R = 1k;
  parameter real C = 1n;
  parameter real IS = 1p;
  parameter real VT = 5m;
  electrical in, out, gnd;
  ground gnd;
  branch (in, out) br;
  branch (out, gnd) bd;
  branch (out, gnd) bc;
  analog begin
    V(br) <+ R * I(br);
    I(bd) <+ IS * (exp(V(bd) / VT) - 1);
    I(bc) <+ C * ddt(V(bc));
  end
endmodule
"
    .to_string()
}

/// The four benchmark circuits of Table I as `(label, source, inputs)`.
pub fn paper_benchmarks() -> Vec<(&'static str, String, usize)> {
    vec![
        ("2IN", two_inputs(), 2),
        ("RC1", rc_ladder(1), 1),
        ("RC20", rc_ladder(20), 1),
        ("OA", opamp(), 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abstraction;
    use vams_parser::parse_module;

    #[test]
    fn square_wave_shape() {
        let sq = SquareWave::paper();
        assert_eq!(sq.value(0.0), 1.0);
        assert_eq!(sq.value(0.49e-3), 1.0);
        assert_eq!(sq.value(0.51e-3), 0.0);
        assert_eq!(sq.value(1.0e-3), 1.0);
        let samples: Vec<f64> = sq.samples(0.25e-3, 5).collect();
        assert_eq!(samples, vec![1.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn piecewise_constant_is_seed_deterministic() {
        let a = PiecewiseConstant::seeded(42, 8, 1e-4, -1.0, 1.0);
        let b = PiecewiseConstant::seeded(42, 8, 1e-4, -1.0, 1.0);
        let c = PiecewiseConstant::seeded(43, 8, 1e-4, -1.0, 1.0);
        assert_eq!(a, b, "same seed, same wave");
        assert_ne!(a, c, "different seed, different wave");
        for level in &a.levels {
            assert!((-1.0..1.0).contains(level), "level {level} out of range");
        }
        // Holds each level for `hold`, then cycles.
        assert_eq!(a.value(0.0), a.levels[0]);
        assert_eq!(a.value(0.99e-4), a.levels[0]);
        assert_eq!(a.value(1.01e-4), a.levels[1]);
        assert_eq!(a.value(8.5e-4), a.levels[0], "wraps after the last");
        // Trait and inherent sampling agree.
        fn through_trait<S: Stimulus>(s: &S, t: f64) -> f64 {
            s.value(t)
        }
        assert_eq!(through_trait(&a, 3.3e-4), a.value(3.3e-4));
        assert_eq!(
            through_trait(&SquareWave::paper(), 0.6e-3),
            SquareWave::paper().value(0.6e-3)
        );
    }

    #[test]
    fn xorshift_stream_is_reproducible_and_spread() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        let draws: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        for d in &draws {
            assert_eq!(*d, b.next_u64());
        }
        // Zero seed is remapped, not a stuck all-zero stream.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        // f64 draws live in [0, 1) and are not constant.
        let mut r = XorShift64::new(123);
        let fs: Vec<f64> = (0..64).map(|_| r.next_f64()).collect();
        assert!(fs.iter().all(|f| (0.0..1.0).contains(f)));
        let mean = fs.iter().sum::<f64>() / fs.len() as f64;
        assert!((mean - 0.5).abs() < 0.2, "mean {mean} suspicious");
    }

    #[test]
    fn rc_ladder_sources_parse_and_scale() {
        for n in [1, 2, 5, 20] {
            let m = parse_module(&rc_ladder(n)).unwrap();
            assert_eq!(m.branches.len(), 2 * n);
            // Nodes: in, n1..n_{n−1}, out, gnd.
            assert_eq!(m.net_names().count(), n + 2);
        }
        // The paper quotes RC20 as 22 nodes and 41 branches (their count
        // includes the source branch added by the stimulus).
        let m = parse_module(&rc_ladder(20)).unwrap();
        assert_eq!(m.net_names().count(), 22);
        assert_eq!(m.branches.len(), 40);
    }

    #[test]
    fn two_inputs_gains_match_fig8a() {
        let m = parse_module(&two_inputs()).unwrap();
        let mut model = Abstraction::new(&m).dt(1e-6).build().unwrap();
        assert_eq!(model.input_names(), &["in1".to_string(), "in2".to_string()]);
        model.step(&[1.0, 0.0]);
        let g1 = model.output(0);
        assert!((g1 + 10.0 / 3.0).abs() < 2e-3, "in1 gain −R3/R1, got {g1}");
        model.reset();
        model.step(&[0.0, 1.0]);
        let g2 = model.output(0);
        assert!((g2 + 10.0 / 14.0).abs() < 2e-3, "in2 gain −R3/R2, got {g2}");
    }

    #[test]
    fn opamp_settles_to_inverting_gain() {
        let m = parse_module(&opamp()).unwrap();
        let mut model = Abstraction::new(&m).dt(50e-9).build().unwrap();
        // Settle well past the output pole (~Rout·C1 time scale).
        for _ in 0..200_000 {
            model.step(&[0.5]);
        }
        let v = model.output(0);
        assert!((v + 2.0).abs() < 5e-3, "−4 × 0.5 = −2, got {v}");
    }

    #[test]
    fn diode_clamp_parses_with_expected_topology() {
        let m = parse_module(&diode_clamp()).unwrap();
        // in, out, gnd / resistor + diode + capacitor branches.
        assert_eq!(m.net_names().count(), 3);
        assert_eq!(m.branches.len(), 3);
    }

    #[test]
    fn paper_benchmark_set_is_complete() {
        let benches = paper_benchmarks();
        let labels: Vec<_> = benches.iter().map(|(l, _, _)| *l).collect();
        assert_eq!(labels, vec!["2IN", "RC1", "RC20", "OA"]);
        for (label, src, inputs) in benches {
            let m = parse_module(&src).unwrap();
            let model = Abstraction::new(&m)
                .dt(50e-9)
                .build()
                .unwrap_or_else(|e| panic!("{label} must abstract cleanly: {e}"));
            assert_eq!(model.input_names().len(), inputs, "{label} input count");
        }
    }
}
