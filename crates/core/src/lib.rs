//! Automatic conversion and abstraction of Verilog-AMS components for
//! single-kernel virtual platforms — a from-scratch reproduction of the
//! methodology of *"Integration of mixed-signal components into virtual
//! platforms for holistic simulation of smart systems"* (Fraccaroli, Lora,
//! Vinco, Quaglia, Fummi — DATE 2016).
//!
//! The pipeline turns a conservative (Kirchhoff-constrained) Verilog-AMS
//! description into an executable *signal-flow* model restricted to the
//! output signals of interest:
//!
//! 1. [`acquire`](acquire::acquire) — parse dipole equations, build the
//!    circuit graph (§IV-A).
//! 2. [`enrich`](enrich::enrich) — add KCL/KVL, solve every relation for
//!    each term, build the dependency-class table (§IV-B, Algorithm 1).
//! 3. [`assemble`](assemble::assemble) — chain equations from the output of
//!    interest, resolve `ddt`/`idt`, solve the linear self-references
//!    (§IV-C, Algorithm 2 + Figure 7).
//! 4. [`SignalFlowModel`] — compile to a flat register program executable at
//!    "plain C++" speed, or emit C++/SystemC source via [`codegen`].
//!
//! # Quickstart
//!
//! ```
//! use amsvp_core::Abstraction;
//!
//! let src = "
//! module rc(in, out);
//!   input in; output out;
//!   parameter real R = 5k;
//!   parameter real C = 25n;
//!   electrical in, out, gnd;
//!   ground gnd;
//!   branch (in, out) res;
//!   branch (out, gnd) cap;
//!   analog begin
//!     V(res) <+ R * I(res);
//!     I(cap) <+ C * ddt(V(cap));
//!   end
//! endmodule";
//! let module = vams_parser::parse_module(src)?;
//! let mut model = Abstraction::new(&module)
//!     .dt(50e-9)
//!     .output("V(out)")
//!     .build()?;
//! // Drive with a constant 1 V input for 1000 steps.
//! for _ in 0..1000 {
//!     model.step(&[1.0]);
//! }
//! assert!(model.output(0) > 0.3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod acquire;
pub mod assemble;
pub mod circuits;
pub mod codegen;
pub mod compact;
pub mod discretize;
pub mod enrich;
mod error;
mod model;
mod pipeline;

pub use acquire::{AcquiredModel, SfStmt};
pub use assemble::{Assembly, SolveMode};
pub use enrich::{conservative_relations, enrich, enrich_with, EnrichOptions};
pub use error::AbstractError;
pub use model::SignalFlowModel;
pub use pipeline::{Abstraction, OutputSpec};

pub use netlist::Quantity;
