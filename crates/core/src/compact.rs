//! Affine compaction of elaborated update expressions.
//!
//! Symbolic chain substitution (Gaussian elimination by splicing) leaves
//! deeply nested trees whose size grows polynomially with circuit depth.
//! For *linear* circuits every update is an affine function of its leaves
//! (inputs, delayed states, already-computed quantities), so it can be
//! rewritten as the flat constant-coefficient statement the paper's
//! Figure 7(b) shows: `x = c₀ + c₁·a + c₂·b + …`. That keeps generated
//! code and the compiled evaluator at O(#leaves) work per step.
//!
//! Nonlinear or conditional expressions are left untouched.

use std::collections::BTreeMap;

use expr::{BinOp, Expr};
use netlist::{QExpr, Quantity};

/// A leaf of an affine expression: a quantity at a given delay (0 =
/// current value).
pub type Leaf = (Quantity, u32);

/// The affine view of an expression: constant term plus weighted leaves.
pub type AffineTerms = (f64, Vec<(Leaf, f64)>);

/// An affine form `constant + Σ coeff·leaf`.
#[derive(Debug, Clone, PartialEq, Default)]
struct Affine {
    constant: f64,
    terms: BTreeMap<Leaf, f64>,
}

impl Affine {
    fn constant(v: f64) -> Affine {
        Affine {
            constant: v,
            terms: BTreeMap::new(),
        }
    }

    fn leaf(l: Leaf) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(l, 1.0);
        Affine {
            constant: 0.0,
            terms,
        }
    }

    fn scale(mut self, k: f64) -> Affine {
        self.constant *= k;
        self.terms.values_mut().for_each(|c| *c *= k);
        self
    }

    fn add(mut self, other: Affine, sign: f64) -> Affine {
        self.constant += sign * other.constant;
        for (l, c) in other.terms {
            *self.terms.entry(l).or_insert(0.0) += sign * c;
        }
        self
    }

    fn as_pure_constant(&self) -> Option<f64> {
        self.terms.is_empty().then_some(self.constant)
    }

    fn into_expr(self) -> QExpr {
        // Coefficients more than 16 decimal orders below the largest one
        // cannot influence a double-precision sum; dropping them keeps the
        // eliminated updates of chain circuits O(bandwidth) instead of
        // O(n²) without any representable change in the result.
        let max_coeff = self.terms.values().fold(0.0_f64, |m, c| m.max(c.abs()));
        let floor = max_coeff * 1e-16;
        let mut e: Option<QExpr> = None;
        for (l, c) in self.terms {
            if c == 0.0 || c.abs() < floor {
                continue;
            }
            let leaf = match l {
                (q, 0) => Expr::var(q),
                (q, k) => Expr::prev_n(q, k),
            };
            let term = if c == 1.0 { leaf } else { Expr::num(c) * leaf };
            e = Some(match e {
                None => term,
                Some(acc) => acc + term,
            });
        }
        match e {
            None => Expr::num(self.constant),
            Some(acc) if self.constant == 0.0 => acc,
            Some(acc) => acc + Expr::num(self.constant),
        }
    }
}

/// Tries to view an expression as an affine form over its leaves.
fn as_affine(e: &QExpr) -> Option<Affine> {
    match e {
        Expr::Num(v) => Some(Affine::constant(*v)),
        Expr::Var(q) => Some(Affine::leaf((q.clone(), 0))),
        Expr::Prev(q, k) => Some(Affine::leaf((q.clone(), *k))),
        Expr::Neg(a) => Some(as_affine(a)?.scale(-1.0)),
        Expr::Bin(BinOp::Add, a, b) => Some(as_affine(a)?.add(as_affine(b)?, 1.0)),
        Expr::Bin(BinOp::Sub, a, b) => Some(as_affine(a)?.add(as_affine(b)?, -1.0)),
        Expr::Bin(BinOp::Mul, a, b) => {
            let fa = as_affine(a)?;
            let fb = as_affine(b)?;
            if let Some(k) = fa.as_pure_constant() {
                Some(fb.scale(k))
            } else {
                fb.as_pure_constant().map(|k| fa.scale(k))
            }
        }
        Expr::Bin(BinOp::Div, a, b) => {
            let fb = as_affine(b)?;
            let k = fb.as_pure_constant()?;
            if k == 0.0 {
                return None;
            }
            Some(as_affine(a)?.scale(1.0 / k))
        }
        // Conditionals, relational operators, function calls and analog
        // operators are not affine.
        _ => None,
    }
}

/// Rewrites an expression as a flat constant-coefficient combination when
/// it is affine; returns a clone otherwise.
pub fn compact(e: &QExpr) -> QExpr {
    match as_affine(e) {
        Some(affine) => affine.into_expr(),
        None => e.clone(),
    }
}

/// Extracts the affine view of an expression — the constant term plus
/// `((quantity, delay), coefficient)` pairs — with the same sub-ULP
/// pruning as [`compact`]. Returns `None` for non-affine expressions.
///
/// The compiled model evaluator uses this to run constant-coefficient
/// updates as native dot products instead of interpreted bytecode.
pub fn affine_terms(e: &QExpr) -> Option<AffineTerms> {
    let affine = as_affine(e)?;
    let max_coeff = affine.terms.values().fold(0.0_f64, |m, c| m.max(c.abs()));
    let floor = max_coeff * 1e-16;
    let terms = affine
        .terms
        .into_iter()
        .filter(|(_, c)| *c != 0.0 && c.abs() >= floor)
        .collect();
    Some((affine.constant, terms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> QExpr {
        Expr::var(Quantity::var(n))
    }

    fn assert_same_value(a: &QExpr, b: &QExpr) {
        for seed in [0.1_f64, -0.7, 2.3] {
            let mut env = |q: &Quantity, delay: u32| {
                let h = q.name().bytes().map(u64::from).sum::<u64>() as f64;
                Some(seed * (h + 1.0) / (delay as f64 + 1.0))
            };
            let x = a.eval(&mut env).unwrap();
            let y = b.eval(&mut env).unwrap();
            assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "{a} vs {b}: {x} != {y}"
            );
        }
    }

    #[test]
    fn flattens_nested_linear_tree() {
        // ((x + y)·2 − (x − 3)/4)·0.5 → flat affine
        let e = ((v("x") + v("y")) * Expr::num(2.0) - (v("x") - Expr::num(3.0)) / Expr::num(4.0))
            * Expr::num(0.5);
        let c = compact(&e);
        assert!(c.node_count() < e.node_count());
        assert_same_value(&e, &c);
    }

    #[test]
    fn merges_duplicate_leaves() {
        // x + x + x → 3x (one term)
        let e = v("x") + v("x") + v("x");
        let c = compact(&e);
        assert_eq!(c, Expr::num(3.0) * v("x"));
    }

    #[test]
    fn cancellation_drops_terms() {
        let e = v("x") - v("x") + Expr::num(2.0);
        assert_eq!(compact(&e), Expr::num(2.0));
    }

    #[test]
    fn keeps_delays_distinct() {
        let q = Quantity::var("x");
        let e = Expr::var(q.clone()) + Expr::prev(q.clone()) + Expr::prev_n(q, 2);
        let c = compact(&e);
        assert_same_value(&e, &c);
        assert_eq!(c.variables().len(), 1);
        assert_eq!(c.node_count(), 5, "three distinct leaves survive");
    }

    #[test]
    fn nonlinear_left_untouched() {
        let e = v("x") * v("y");
        assert_eq!(compact(&e), e);
        let e2 = Expr::call1(expr::Func::Sin, v("x"));
        assert_eq!(compact(&e2), e2);
        let e3 = Expr::cond(v("c"), v("x"), v("y"));
        assert_eq!(compact(&e3), e3);
    }

    #[test]
    fn division_by_constant_is_affine() {
        let e = (v("x") + Expr::num(1.0)) / Expr::num(4.0);
        let c = compact(&e);
        assert_same_value(&e, &c);
        // Division by a variable is not.
        let e2 = Expr::num(1.0) / v("x");
        assert_eq!(compact(&e2), e2);
    }

    #[test]
    fn pure_constant_collapses() {
        let e: QExpr = (Expr::num(2.0) + Expr::num(3.0)) * Expr::num(4.0);
        assert_eq!(compact(&e), Expr::num(20.0));
    }
}
