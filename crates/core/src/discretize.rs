//! Resolution of the analog operators `ddt`/`idt` by backward-Euler
//! discretization — the `ResolveDerivative` step of Algorithm 2.
//!
//! * `ddt(e)` distributes over linear structure down to variable leaves,
//!   where `ddt(x) → (x − x@(t−Δt)) / Δt`. Nonlinear arguments get an
//!   auxiliary state `s := e` so that `ddt(e) → (e − s@(t−Δt)) / Δt`.
//! * `idt(e) → s@(t−Δt) + Δt·e` with the auxiliary accumulator
//!   `s := s@(t−Δt) + Δt·e`.
//!
//! Auxiliary assignments are collected by [`AuxAllocator`] and appended to
//! the model after the main evaluation sequence (they only need to be
//! up to date by the *end* of each step).

use expr::Expr;
use netlist::{QExpr, Quantity};

/// Allocates auxiliary state variables for discretization.
#[derive(Debug, Default)]
pub struct AuxAllocator {
    counter: usize,
    pending: Vec<(Quantity, QExpr)>,
}

impl AuxAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        AuxAllocator::default()
    }

    fn fresh(&mut self, prefix: &str) -> Quantity {
        let q = Quantity::var(format!("__{prefix}{}", self.counter));
        self.counter += 1;
        q
    }

    fn push(&mut self, q: Quantity, def: QExpr) {
        self.pending.push((q, def));
    }

    /// Number of auxiliaries allocated so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no auxiliaries were needed.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Truncates back to a snapshot (assembly backtracking support).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.pending.truncate(len);
    }

    /// Consumes the allocator, returning the pending `(state, definition)`
    /// assignments in allocation order.
    pub fn into_pending(self) -> Vec<(Quantity, QExpr)> {
        self.pending
    }

    /// Borrows the pending assignments.
    pub fn pending(&self) -> &[(Quantity, QExpr)] {
        &self.pending
    }
}

/// Rewrites every `ddt`/`idt` in `e` using backward-Euler formulas with
/// time step `dt`, allocating auxiliary states in `aux` where the argument
/// is not a linear combination of leaves.
pub fn discretize(e: &QExpr, dt: f64, aux: &mut AuxAllocator) -> QExpr {
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => e.clone(),
        Expr::Neg(a) => -discretize(a, dt, aux),
        Expr::Bin(op, a, b) => Expr::bin(*op, discretize(a, dt, aux), discretize(b, dt, aux)),
        Expr::Call(f, args) => {
            Expr::Call(*f, args.iter().map(|a| discretize(a, dt, aux)).collect())
        }
        Expr::Cond(c, t, el) => Expr::cond(
            discretize(c, dt, aux),
            discretize(t, dt, aux),
            discretize(el, dt, aux),
        ),
        Expr::Ddt(inner) => {
            let inner = discretize(inner, dt, aux).simplified();
            ddt_of(&inner, dt, aux)
        }
        Expr::Idt(inner) => {
            let inner = discretize(inner, dt, aux).simplified();
            let s = aux.fresh("idt");
            let update = Expr::prev(s.clone()) + Expr::num(dt) * inner;
            aux.push(s, update.clone());
            update
        }
    }
}

/// Backward-Euler derivative of an already-discretized expression.
fn ddt_of(e: &QExpr, dt: f64, aux: &mut AuxAllocator) -> QExpr {
    let inv_dt = Expr::num(1.0 / dt);
    match e {
        Expr::Num(_) => Expr::num(0.0),
        Expr::Var(x) => ((Expr::var(x.clone()) - Expr::prev(x.clone())) * inv_dt).simplified(),
        Expr::Prev(x, k) => {
            ((Expr::prev_n(x.clone(), *k) - Expr::prev_n(x.clone(), *k + 1)) * inv_dt).simplified()
        }
        Expr::Neg(a) => -ddt_of(a, dt, aux),
        Expr::Bin(expr::BinOp::Add, a, b) => ddt_of(a, dt, aux) + ddt_of(b, dt, aux),
        Expr::Bin(expr::BinOp::Sub, a, b) => ddt_of(a, dt, aux) - ddt_of(b, dt, aux),
        Expr::Bin(expr::BinOp::Mul, a, b) if a.as_num().is_some() => {
            (**a).clone() * ddt_of(b, dt, aux)
        }
        Expr::Bin(expr::BinOp::Mul, a, b) if b.as_num().is_some() => {
            ddt_of(a, dt, aux) * (**b).clone()
        }
        Expr::Bin(expr::BinOp::Div, a, b) if b.as_num().is_some() => {
            ddt_of(a, dt, aux) / (**b).clone()
        }
        other => {
            // Nonlinear argument: track it as an auxiliary state so its
            // previous value exists.
            let s = aux.fresh("ddt");
            aux.push(s.clone(), other.clone());
            ((other.clone() - Expr::prev(s)) * inv_dt).simplified()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::Func;

    fn v(n: &str) -> QExpr {
        Expr::var(Quantity::var(n))
    }

    fn eval(e: &QExpr, cur: f64, prev: f64) -> f64 {
        e.eval(&mut |_q: &Quantity, delay| Some(if delay == 0 { cur } else { prev }))
            .unwrap()
    }

    #[test]
    fn ddt_of_variable_is_backward_difference() {
        let mut aux = AuxAllocator::new();
        let d = discretize(&Expr::ddt(v("x")), 0.5, &mut aux);
        assert!(aux.is_empty());
        // (4 − 1) / 0.5 = 6
        assert_eq!(eval(&d, 4.0, 1.0), 6.0);
    }

    #[test]
    fn ddt_distributes_over_linear_combinations() {
        let mut aux = AuxAllocator::new();
        let e = Expr::ddt(Expr::num(2.0) * v("x") - v("y") / Expr::num(4.0));
        let d = discretize(&e, 1.0, &mut aux);
        assert!(aux.is_empty(), "linear combos need no auxiliaries");
        // x: 3→5, y: 8→4 ⇒ 2·2 − (−4)/4 = 5... careful: (cur−prev).
        let val = d
            .eval(&mut |q: &Quantity, delay| match (q.name(), delay) {
                ("x", 0) => Some(5.0),
                ("x", 1) => Some(3.0),
                ("y", 0) => Some(4.0),
                ("y", 1) => Some(8.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(val, 2.0 * 2.0 - (-4.0) / 4.0);
    }

    #[test]
    fn second_derivative_uses_two_delays() {
        let mut aux = AuxAllocator::new();
        let d = discretize(&Expr::ddt(Expr::ddt(v("x"))), 1.0, &mut aux);
        assert!(aux.is_empty());
        // (x − 2x₁ + x₂) with dt = 1: x=1, x₁=4, x₂=9 ⇒ 1 − 8 + 9 = 2.
        let val = d
            .eval(&mut |_q: &Quantity, delay| {
                Some(match delay {
                    0 => 1.0,
                    1 => 4.0,
                    _ => 9.0,
                })
            })
            .unwrap();
        assert_eq!(val, 2.0);
    }

    #[test]
    fn nonlinear_ddt_allocates_state() {
        let mut aux = AuxAllocator::new();
        let e = Expr::ddt(Expr::call1(Func::Sin, v("x")));
        let d = discretize(&e, 0.1, &mut aux);
        assert_eq!(aux.len(), 1);
        let (s, def) = &aux.pending()[0];
        assert_eq!(*def, Expr::call1(Func::Sin, v("x")));
        // d = (sin(x) − prev(s)) / dt
        let val = d
            .eval(&mut |q: &Quantity, delay| {
                if q == s && delay == 1 {
                    Some(0.5_f64)
                } else {
                    Some(1.0) // x
                }
            })
            .unwrap();
        assert!((val - (1.0_f64.sin() - 0.5) / 0.1).abs() < 1e-12);
    }

    #[test]
    fn idt_accumulates() {
        let mut aux = AuxAllocator::new();
        let d = discretize(&Expr::idt(v("x")), 0.25, &mut aux);
        assert_eq!(aux.len(), 1);
        let (s, def) = &aux.pending()[0];
        // Replacement and update are the same accumulator expression.
        assert_eq!(d, *def);
        // s_prev = 2, x = 4 ⇒ 2 + 0.25·4 = 3.
        let val = d
            .eval(&mut |q: &Quantity, delay| {
                if q == s && delay == 1 {
                    Some(2.0)
                } else {
                    Some(4.0)
                }
            })
            .unwrap();
        assert_eq!(val, 3.0);
    }

    #[test]
    fn untouched_expressions_pass_through() {
        let mut aux = AuxAllocator::new();
        let e = Expr::cond(
            v("c"),
            Expr::call2(Func::Max, v("a"), Expr::num(0.0)),
            Expr::prev(Quantity::var("b")),
        );
        assert_eq!(discretize(&e, 1.0, &mut aux), e);
        assert!(aux.is_empty());
    }

    #[test]
    fn allocator_truncates_for_backtracking() {
        let mut aux = AuxAllocator::new();
        let _ = discretize(&Expr::idt(v("x")), 1.0, &mut aux);
        let snapshot = aux.len();
        let _ = discretize(&Expr::idt(v("y")), 1.0, &mut aux);
        assert_eq!(aux.len(), 2);
        aux.truncate(snapshot);
        assert_eq!(aux.len(), 1);
        // Fresh names keep counting up; no collisions after truncation.
        let d = discretize(&Expr::idt(v("z")), 1.0, &mut aux);
        let names: Vec<_> = d
            .variables()
            .into_iter()
            .map(|q| q.name().to_string())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("__idt")));
    }
}
