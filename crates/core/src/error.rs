use std::error::Error;
use std::fmt;

use netlist::Quantity;

/// Errors raised by the abstraction pipeline.
///
/// Every variant carries complete, structured fields — no placeholder
/// payloads — and the [`Abstraction`](crate::Abstraction) builder wraps
/// stage errors in [`AbstractError::InModule`] so messages name the
/// module they originate from. Use [`AbstractError::root`] to match on
/// the underlying cause regardless of wrapping.
#[derive(Debug, Clone, PartialEq)]
pub enum AbstractError {
    /// An identifier in the analog block is neither a parameter, a declared
    /// `real`, a net, nor a branch.
    UnknownIdentifier {
        /// The unresolved identifier.
        name: String,
    },
    /// A flow access `I(a)` / `I(a,b)` does not correspond to any declared
    /// branch.
    NoSuchBranch {
        /// Branch name, or the positive net of a net-pair access.
        from: String,
        /// Negative net of a net-pair access; `None` for a named-branch
        /// access `I(name)`.
        to: Option<String>,
    },
    /// A parameter default could not be evaluated to a constant.
    UnresolvedParameter {
        /// The parameter's declared name.
        name: String,
    },
    /// Contribution statements inside conditionals are outside the
    /// supported conservative subset (the paper's conditionals appear in
    /// signal-flow blocks only).
    ConditionalContribution {
        /// Textual form of the contribution target.
        target: String,
    },
    /// The requested output quantity is not defined by any equation chain.
    UndefinedOutput {
        /// The quantity that has no defining equation.
        quantity: Quantity,
    },
    /// Assembly could not find an independent equation for a quantity even
    /// after exhausting all dependency-class choices.
    NoEquationFor {
        /// The over-constrained quantity.
        quantity: Quantity,
    },
    /// The final equation for a quantity is not linear in that quantity, so
    /// the Step-3 linear solve cannot eliminate its self-reference.
    NonlinearLoop {
        /// The quantity whose equation is self-referentially nonlinear.
        quantity: Quantity,
    },
    /// Simultaneous elaboration requires a linear discretized system; a
    /// nonlinear coupling was found involving this quantity.
    NonlinearSystem {
        /// The quantity appearing nonlinearly.
        quantity: Quantity,
    },
    /// The discretized linear system is singular (e.g. floating subcircuit).
    SingularSystem,
    /// The module's circuit topology is invalid.
    Netlist(netlist::NetlistError),
    /// The time step must be strictly positive and finite.
    InvalidTimeStep {
        /// The offending step, in seconds.
        dt: f64,
    },
    /// Backtracking exceeded the safety bound (pathological topology).
    SearchBudgetExhausted,
    /// A pipeline stage failed while abstracting a named module; wraps the
    /// underlying cause with the module context.
    InModule {
        /// Name of the Verilog-AMS module being abstracted.
        module: String,
        /// The underlying stage error.
        source: Box<AbstractError>,
    },
}

impl AbstractError {
    /// Wraps `self` with the name of the module being abstracted (no-op
    /// re-wrapping is avoided: an existing [`AbstractError::InModule`]
    /// layer is returned unchanged).
    #[must_use]
    pub fn in_module(self, module: impl Into<String>) -> AbstractError {
        match self {
            AbstractError::InModule { .. } => self,
            other => AbstractError::InModule {
                module: module.into(),
                source: Box::new(other),
            },
        }
    }

    /// The innermost error, unwrapping any [`AbstractError::InModule`]
    /// context layers. Useful for matching on the underlying cause.
    pub fn root(&self) -> &AbstractError {
        match self {
            AbstractError::InModule { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for AbstractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractError::UnknownIdentifier { name } => {
                write!(f, "unknown identifier `{name}` in analog block")
            }
            AbstractError::NoSuchBranch { from, to: None } => {
                write!(f, "flow access I({from}) matches no declared branch")
            }
            AbstractError::NoSuchBranch { from, to: Some(to) } => {
                write!(f, "flow access I({from},{to}) matches no declared branch")
            }
            AbstractError::UnresolvedParameter { name } => {
                write!(f, "parameter `{name}` does not evaluate to a constant")
            }
            AbstractError::ConditionalContribution { target } => write!(
                f,
                "contribution to {target} inside a conditional is not supported"
            ),
            AbstractError::UndefinedOutput { quantity } => {
                write!(f, "output {quantity} is not defined by the model")
            }
            AbstractError::NoEquationFor { quantity } => write!(
                f,
                "no independent equation available for {quantity} (over-constrained chain)"
            ),
            AbstractError::NonlinearLoop { quantity } => write!(
                f,
                "equation for {quantity} is nonlinear in {quantity}; cannot solve the loop"
            ),
            AbstractError::NonlinearSystem { quantity } => write!(
                f,
                "simultaneous elaboration requires linear equations; {quantity} appears nonlinearly"
            ),
            AbstractError::SingularSystem => {
                write!(f, "discretized system is singular")
            }
            AbstractError::Netlist(e) => write!(f, "netlist error: {e}"),
            AbstractError::InvalidTimeStep { dt } => {
                write!(f, "invalid time step {dt}; must be positive and finite")
            }
            AbstractError::SearchBudgetExhausted => {
                write!(f, "assembly backtracking budget exhausted")
            }
            AbstractError::InModule { module, source } => {
                write!(f, "in module `{module}`: {source}")
            }
        }
    }
}

impl Error for AbstractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AbstractError::Netlist(e) => Some(e),
            AbstractError::InModule { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for AbstractError {
    fn from(e: netlist::NetlistError) -> Self {
        AbstractError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(AbstractError::UnknownIdentifier { name: "zz".into() }
            .to_string()
            .contains("zz"));
        assert!(AbstractError::NoSuchBranch {
            from: "a".into(),
            to: Some("b".into()),
        }
        .to_string()
        .contains("I(a,b)"));
        assert!(AbstractError::NoSuchBranch {
            from: "cap".into(),
            to: None,
        }
        .to_string()
        .contains("I(cap)"));
        assert!(AbstractError::NonlinearLoop {
            quantity: Quantity::var("x"),
        }
        .to_string()
        .contains('x'));
        let e: AbstractError = netlist::NetlistError::NoGround.into();
        assert!(e.to_string().contains("no ground"));
    }

    #[test]
    fn module_context_wraps_and_unwraps() {
        let inner = AbstractError::UnknownIdentifier {
            name: "ghost".into(),
        };
        let wrapped = inner.clone().in_module("rc_ladder");
        assert_eq!(
            wrapped.to_string(),
            "in module `rc_ladder`: unknown identifier `ghost` in analog block"
        );
        assert_eq!(wrapped.root(), &inner);
        // Re-wrapping keeps the original module context.
        let rewrapped = wrapped.clone().in_module("other");
        assert_eq!(rewrapped, wrapped);
        // std::error::Error::source exposes the inner layer.
        use std::error::Error as _;
        assert!(wrapped.source().is_some());
    }
}
