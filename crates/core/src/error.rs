use std::error::Error;
use std::fmt;

use netlist::Quantity;

/// Errors raised by the abstraction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AbstractError {
    /// An identifier in the analog block is neither a parameter, a declared
    /// `real`, a net, nor a branch.
    UnknownIdentifier(String),
    /// A flow access `I(a,b)` does not correspond to any declared branch.
    NoSuchBranch(String, String),
    /// A parameter default could not be evaluated to a constant.
    UnresolvedParameter(String),
    /// Contribution statements inside conditionals are outside the
    /// supported conservative subset (the paper's conditionals appear in
    /// signal-flow blocks only).
    ConditionalContribution(String),
    /// The requested output quantity is not defined by any equation chain.
    UndefinedOutput(Quantity),
    /// Assembly could not find an independent equation for a quantity even
    /// after exhausting all dependency-class choices.
    NoEquationFor(Quantity),
    /// The final equation for a quantity is not linear in that quantity, so
    /// the Step-3 linear solve cannot eliminate its self-reference.
    NonlinearLoop(Quantity),
    /// Simultaneous elaboration requires a linear discretized system; a
    /// nonlinear coupling was found involving this quantity.
    NonlinearSystem(Quantity),
    /// The discretized linear system is singular (e.g. floating subcircuit).
    SingularSystem,
    /// The module's circuit topology is invalid.
    Netlist(netlist::NetlistError),
    /// The time step must be strictly positive and finite.
    InvalidTimeStep(f64),
    /// Backtracking exceeded the safety bound (pathological topology).
    SearchBudgetExhausted,
}

impl fmt::Display for AbstractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractError::UnknownIdentifier(s) => {
                write!(f, "unknown identifier `{s}` in analog block")
            }
            AbstractError::NoSuchBranch(a, b) => {
                write!(f, "flow access I({a},{b}) matches no declared branch")
            }
            AbstractError::UnresolvedParameter(p) => {
                write!(f, "parameter `{p}` does not evaluate to a constant")
            }
            AbstractError::ConditionalContribution(t) => write!(
                f,
                "contribution to {t} inside a conditional is not supported"
            ),
            AbstractError::UndefinedOutput(q) => {
                write!(f, "output {q} is not defined by the model")
            }
            AbstractError::NoEquationFor(q) => write!(
                f,
                "no independent equation available for {q} (over-constrained chain)"
            ),
            AbstractError::NonlinearLoop(q) => write!(
                f,
                "equation for {q} is nonlinear in {q}; cannot solve the loop"
            ),
            AbstractError::NonlinearSystem(q) => write!(
                f,
                "simultaneous elaboration requires linear equations; {q} appears nonlinearly"
            ),
            AbstractError::SingularSystem => {
                write!(f, "discretized system is singular")
            }
            AbstractError::Netlist(e) => write!(f, "netlist error: {e}"),
            AbstractError::InvalidTimeStep(dt) => {
                write!(f, "invalid time step {dt}; must be positive and finite")
            }
            AbstractError::SearchBudgetExhausted => {
                write!(f, "assembly backtracking budget exhausted")
            }
        }
    }
}

impl Error for AbstractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AbstractError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for AbstractError {
    fn from(e: netlist::NetlistError) -> Self {
        AbstractError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(AbstractError::UnknownIdentifier("zz".into())
            .to_string()
            .contains("zz"));
        assert!(AbstractError::NoSuchBranch("a".into(), "b".into())
            .to_string()
            .contains("I(a,b)"));
        assert!(AbstractError::NonlinearLoop(Quantity::var("x"))
            .to_string()
            .contains('x'));
        let e: AbstractError = netlist::NetlistError::NoGround.into();
        assert!(e.to_string().contains("no ground"));
    }
}
