//! The user-facing pipeline: module in, executable model (or generated
//! source) out.
//!
//! Signal-flow and conservative descriptions go through the same four
//! steps; a pure signal-flow module simply has trivial chains, so the
//! conversion problem of §III-C degenerates to ordered translation exactly
//! as the paper describes.

use netlist::Quantity;
use obs::Obs;
use vams_ast::Module;

use crate::acquire::{acquire, AcquiredModel};
use crate::assemble::{assemble_with, Assembly, SolveMode};
use crate::enrich::enrich;
use crate::{AbstractError, SignalFlowModel};

/// What the caller wants to observe, before resolution against the module.
///
/// Parsed from strings like `"V(out)"`, `"I(cap)"`, or a bare variable
/// name; resolution decides between node potentials, branch voltages and
/// branch currents using the module's declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSpec {
    /// `V(name)` — potential of a node, or voltage of a named branch.
    Potential(String),
    /// `I(name)` — current of a named branch.
    Flow(String),
    /// A bare name — a `real` variable, or a node potential.
    Name(String),
}

impl OutputSpec {
    /// Parses a textual spec.
    pub fn parse(spec: &str) -> OutputSpec {
        let s = spec.trim();
        if let Some(inner) = s.strip_prefix("V(").and_then(|r| r.strip_suffix(')')) {
            OutputSpec::Potential(inner.trim().to_string())
        } else if let Some(inner) = s.strip_prefix("I(").and_then(|r| r.strip_suffix(')')) {
            OutputSpec::Flow(inner.trim().to_string())
        } else {
            OutputSpec::Name(s.to_string())
        }
    }

    /// Resolves the spec against an acquired module: decides between node
    /// potentials, branch voltages, branch currents and folded variables
    /// using the module's declarations.
    ///
    /// # Errors
    ///
    /// * [`AbstractError::UnknownIdentifier`] when the name matches no
    ///   declaration of the right kind;
    /// * [`AbstractError::NoSuchBranch`] when `I(name)` names no branch.
    pub fn resolve(&self, model: &AcquiredModel) -> Result<Quantity, AbstractError> {
        let is_branch = |n: &str| model.graph.branch_id(n).is_some();
        let is_node = |n: &str| model.graph.node_id(n).is_some();
        match self {
            OutputSpec::Potential(n) => {
                if is_branch(n) {
                    Ok(Quantity::branch_v(n.clone()))
                } else if is_node(n) {
                    Ok(Quantity::node_v(n.clone()))
                } else {
                    Err(AbstractError::UnknownIdentifier { name: n.clone() })
                }
            }
            OutputSpec::Flow(n) => {
                if is_branch(n) {
                    Ok(Quantity::branch_i(n.clone()))
                } else {
                    Err(AbstractError::NoSuchBranch {
                        from: n.clone(),
                        to: None,
                    })
                }
            }
            OutputSpec::Name(n) => {
                if model.folded_vars.iter().any(|(v, _)| v == n) {
                    Ok(Quantity::var(n.clone()))
                } else if is_node(n) {
                    Ok(Quantity::node_v(n.clone()))
                } else {
                    Err(AbstractError::UnknownIdentifier { name: n.clone() })
                }
            }
        }
    }
}

impl std::fmt::Display for OutputSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputSpec::Potential(n) => write!(f, "V({n})"),
            OutputSpec::Flow(n) => write!(f, "I({n})"),
            OutputSpec::Name(n) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for OutputSpec {
    fn from(s: &str) -> Self {
        OutputSpec::parse(s)
    }
}

impl From<String> for OutputSpec {
    fn from(s: String) -> Self {
        OutputSpec::parse(&s)
    }
}

impl From<&String> for OutputSpec {
    fn from(s: &String) -> Self {
        OutputSpec::parse(s)
    }
}

/// Builder for the abstraction pipeline (Figure 4 of the paper).
///
/// # Example
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone)]
pub struct Abstraction<'m> {
    module: &'m Module,
    dt: f64,
    outputs: Vec<OutputSpec>,
    mode: SolveMode,
    obs: Obs,
}

impl<'m> Abstraction<'m> {
    /// Starts a pipeline for `module` with the paper's default time step
    /// of 50 ns.
    pub fn new(module: &'m Module) -> Self {
        Abstraction {
            module,
            dt: 50e-9,
            outputs: Vec::new(),
            mode: SolveMode::default(),
            obs: Obs::none(),
        }
    }

    /// Attaches an instrumentation collector; the pipeline reports
    /// per-phase timings (`pipeline/acquire`, `pipeline/enrich`,
    /// `pipeline/assemble`, `pipeline/codegen`) through it.
    #[must_use]
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the discretization time step in seconds.
    #[must_use]
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Selects how algebraic couplings are resolved (see [`SolveMode`]).
    #[must_use]
    pub fn mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Adds an output signal of interest (`"V(out)"`, `"I(cap)"`, or a
    /// variable name). May be called repeatedly; without any call, the
    /// module's first `output` port is observed.
    #[must_use]
    pub fn output(mut self, spec: impl Into<OutputSpec>) -> Self {
        self.outputs.push(spec.into());
        self
    }

    /// Runs acquisition + enrichment + assembly and returns the symbolic
    /// assembly together with the ordered input names.
    ///
    /// Exposed separately so code generators can consume the intermediate
    /// result without compiling an executable model.
    ///
    /// # Errors
    ///
    /// Any [`AbstractError`] from the pipeline stages.
    pub fn assembly(&self) -> Result<(Assembly, Vec<String>), AbstractError> {
        let _pipeline = self.obs.span("pipeline");
        self.assembly_stages()
            .map_err(|e| e.in_module(&self.module.name))
    }

    fn assembly_stages(&self) -> Result<(Assembly, Vec<String>), AbstractError> {
        let acquired = {
            let _s = self.obs.span("acquire");
            acquire(self.module)?
        };
        let mut specs = self.outputs.clone();
        if specs.is_empty() {
            let first = acquired.outputs.first().cloned().ok_or_else(|| {
                AbstractError::UndefinedOutput {
                    quantity: Quantity::var("<no output port>"),
                }
            })?;
            specs.push(OutputSpec::Potential(first));
        }
        let outputs: Vec<Quantity> = specs
            .iter()
            .map(|s| s.resolve(&acquired))
            .collect::<Result<_, _>>()?;
        let mut table = {
            let _s = self.obs.span("enrich");
            enrich(&acquired)?
        };
        let assembly = {
            let _s = self.obs.span("assemble");
            assemble_with(&mut table, &outputs, self.dt, self.mode)?
        };
        Ok((assembly, acquired.inputs))
    }

    /// Runs the full pipeline down to an executable [`SignalFlowModel`].
    ///
    /// # Errors
    ///
    /// Any [`AbstractError`] from the pipeline stages.
    pub fn build(&self) -> Result<SignalFlowModel, AbstractError> {
        let (assembly, inputs) = self.assembly()?;
        let _pipeline = self.obs.span("pipeline");
        let _s = self.obs.span("codegen");
        SignalFlowModel::from_assembly(&self.module.name, &assembly, &inputs)
            .map_err(|e| e.in_module(&self.module.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vams_parser::parse_module;

    const RC1: &str = "module rc(in, out);
        input in; output out;
        parameter real R = 5k;
        parameter real C = 25n;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ R * I(res);
          I(cap) <+ C * ddt(V(cap));
        end
      endmodule";

    #[test]
    fn spec_parsing() {
        assert_eq!(
            OutputSpec::parse("V(out)"),
            OutputSpec::Potential("out".into())
        );
        assert_eq!(
            OutputSpec::parse(" I( cap ) "),
            OutputSpec::Flow("cap".into())
        );
        assert_eq!(OutputSpec::parse("vlim"), OutputSpec::Name("vlim".into()));
    }

    #[test]
    fn spec_parsing_edge_cases() {
        // Interior and surrounding whitespace are both tolerated.
        assert_eq!(
            OutputSpec::parse("  V( out )  "),
            OutputSpec::Potential("out".into())
        );
        assert_eq!(
            OutputSpec::parse("\tI(cap)\n"),
            OutputSpec::Flow("cap".into())
        );
        // A name with whitespace around it parses as a bare name.
        assert_eq!(OutputSpec::parse("  y  "), OutputSpec::Name("y".into()));
        // Unbalanced or prefix-only forms fall back to bare names rather
        // than silently losing characters.
        assert_eq!(OutputSpec::parse("V(out"), OutputSpec::Name("V(out".into()));
        assert_eq!(OutputSpec::parse("Vout)"), OutputSpec::Name("Vout)".into()));
        // From impls route through parse for all string flavors.
        assert_eq!(OutputSpec::from("V(a)"), OutputSpec::Potential("a".into()));
        assert_eq!(
            OutputSpec::from(String::from("I(b)")),
            OutputSpec::Flow("b".into())
        );
        assert_eq!(
            OutputSpec::from(&String::from("c")),
            OutputSpec::Name("c".into())
        );
    }

    #[test]
    fn bare_name_resolution_prefers_variable_over_node() {
        use crate::acquire::acquire;
        // `out` is a node; `y` is a folded real variable in this module.
        let m = parse_module(
            "module amb(i, out); input i; output out;
             electrical i, out, gnd; ground gnd;
             real y;
             analog begin
               y = 2 * V(i, gnd);
               V(out, gnd) <+ y;
             end
             endmodule",
        )
        .unwrap();
        let acq = acquire(&m).unwrap();
        assert_eq!(
            OutputSpec::parse("y").resolve(&acq).unwrap(),
            Quantity::var("y"),
            "bare variable wins when declared as real"
        );
        assert_eq!(
            OutputSpec::parse("out").resolve(&acq).unwrap(),
            Quantity::node_v("out"),
            "bare node name falls back to the node potential"
        );
        // V(...) resolution: named branch beats node of the same name.
        assert!(matches!(
            OutputSpec::parse("V(ghost)").resolve(&acq),
            Err(AbstractError::UnknownIdentifier { .. })
        ));
        // I(...) of a non-branch reports the branch name without placeholders.
        let err = OutputSpec::parse("I(out)").resolve(&acq).unwrap_err();
        assert_eq!(
            err,
            AbstractError::NoSuchBranch {
                from: "out".into(),
                to: None
            }
        );
        assert!(err.to_string().contains("I(out)"));
    }

    #[test]
    fn default_output_is_first_output_port() {
        let m = parse_module(RC1).unwrap();
        let mut model = Abstraction::new(&m).dt(125e-6 / 100.0).build().unwrap();
        assert_eq!(model.output_quantities(), &[Quantity::node_v("out")]);
        assert_eq!(model.input_names(), &["in".to_string()]);
        for _ in 0..100 {
            model.step(&[1.0]);
        }
        let analytic = 1.0 - (-1.0_f64).exp();
        assert!((model.output(0) - analytic).abs() < 5e-3);
    }

    #[test]
    fn branch_current_output() {
        let m = parse_module(RC1).unwrap();
        let mut model = Abstraction::new(&m)
            .dt(1e-6)
            .output("I(cap)")
            .build()
            .unwrap();
        model.step(&[1.0]);
        // First step: all current flows into the discharged capacitor.
        assert!(model.output(0) > 0.0);
    }

    #[test]
    fn signal_flow_only_module_converts() {
        // The degenerate conversion case: gain + clamp, no conservative
        // network beyond the output source.
        let m = parse_module(
            "module amp(i, o); input i; output o;
             electrical i, o, gnd; ground gnd;
             parameter real g = 3;
             real y;
             analog begin
               y = g * V(i, gnd);
               if (y > 2) y = 2;
               V(o, gnd) <+ y;
             end
             endmodule",
        )
        .unwrap();
        let mut model = Abstraction::new(&m).dt(1e-6).build().unwrap();
        model.step(&[0.5]);
        assert!((model.output(0) - 1.5).abs() < 1e-12);
        model.step(&[1.0]);
        assert!((model.output(0) - 2.0).abs() < 1e-12, "clamped");
    }

    #[test]
    fn unknown_output_spec_is_reported() {
        let m = parse_module(RC1).unwrap();
        let err = Abstraction::new(&m).output("V(ghost)").build().unwrap_err();
        assert!(matches!(err.root(), AbstractError::UnknownIdentifier { name } if name == "ghost"));
        assert!(err.to_string().contains("in module `rc`"), "{err}");
        let err = Abstraction::new(&m).output("I(ghost)").build().unwrap_err();
        assert!(
            matches!(err.root(), AbstractError::NoSuchBranch { from, to: None } if from == "ghost")
        );
    }

    #[test]
    fn sequential_mode_stays_compact_and_accurate() {
        use crate::circuits;
        let src = circuits::rc_ladder(6);
        let m = parse_module(&src).unwrap();
        let tau = 5000.0 * 25e-9;
        let dt = tau / 100.0;
        let (implicit, _) = Abstraction::new(&m).dt(dt).assembly().unwrap();
        let (sequential, _) = Abstraction::new(&m)
            .dt(dt)
            .mode(SolveMode::Sequential)
            .assembly()
            .unwrap();
        assert!(
            sequential.expression_size() < implicit.expression_size(),
            "sequential {} must be smaller than implicit {}",
            sequential.expression_size(),
            implicit.expression_size()
        );
        // The implicit elaboration settles to the step input.
        let mut model =
            SignalFlowModel::from_assembly("rc6", &implicit, &["in".to_string()]).unwrap();
        for _ in 0..40_000 {
            model.step(&[1.0]);
        }
        let v = model.output(0);
        assert!((v - 1.0).abs() < 2e-2, "settles to 1, got {v}");
        // The sequential (literal §IV-C) elaboration is semi-explicit and
        // diverges on stiff multi-state chains — the documented reason the
        // implicit mode is the default.
        let mut seq =
            SignalFlowModel::from_assembly("rc6", &sequential, &["in".to_string()]).unwrap();
        let mut diverged = false;
        for _ in 0..40_000 {
            seq.step(&[1.0]);
            if !seq.output(0).is_finite() {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "sequential mode is expected to diverge on RC6");
    }

    #[test]
    fn sequential_mode_matches_implicit_on_single_state() {
        // With a single state there are no cross couplings to delay, so
        // both modes produce the same backward-Euler update.
        let m = parse_module(RC1).unwrap();
        let tau = 5000.0 * 25e-9;
        let dt = tau / 100.0;
        let mut a = Abstraction::new(&m).dt(dt).build().unwrap();
        let mut b = Abstraction::new(&m)
            .dt(dt)
            .mode(SolveMode::Sequential)
            .build()
            .unwrap();
        for _ in 0..500 {
            a.step(&[1.0]);
            b.step(&[1.0]);
            assert!((a.output(0) - b.output(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn multiple_outputs() {
        let m = parse_module(RC1).unwrap();
        let mut model = Abstraction::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .output("I(cap)")
            .build()
            .unwrap();
        assert_eq!(model.output_count(), 2);
        model.step(&[1.0]);
        // KCL: the capacitor current equals the resistor current; both are
        // (in − out)/R.
        let out = model.output(0);
        let i = model.output(1);
        assert!((i - (1.0 - out) / 5000.0).abs() < 1e-12);
    }
}
