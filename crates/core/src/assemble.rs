//! Step 3 — Assemble and solve (§IV-C, Algorithm 2 and Figure 6/7).
//!
//! Starting from each output of interest, the assembler recursively fetches
//! one equation per dependency class, splices the chains into the defining
//! expression, discretizes the analog operators (`ResolveDerivative`), and
//! — when the output re-appears on its own right-hand side — solves the
//! linear equation so that only explicitly delayed (`t − Δt`) occurrences
//! remain, exactly as the paper's Figure 7 elaboration does.
//!
//! Two behaviours go beyond the paper's prose but are required for
//! correctness on general topologies:
//!
//! * **Backtracking.** Algorithm 2 greedily takes "one equation of each
//!   dependency set". A fixed fetch order can dead-end on meshed circuits
//!   (every remaining class for some quantity already consumed), so the
//!   assembler backtracks over the candidate classes until a consistent
//!   matching is found.
//! * **Inline chaining through algebraic loops.** When a quantity's spliced
//!   definition still references an *ancestor* that is currently being
//!   defined, the definition is embedded inline in the ancestor's tree
//!   instead of becoming a standalone assignment. Each level solves its own
//!   self-reference, which makes the overall elaboration an exact symbolic
//!   Gaussian elimination — the O(|N|³) "solution of the linear equation"
//!   the paper reports — and yields the unconditionally stable fully
//!   implicit update even for feedback circuits like the operational
//!   amplifier of Figure 8.
//!
//! Setting the `AMSVP_DEBUG` environment variable makes the assembler
//! print every completed definition and every backtracking rollback to
//! stderr — the tool-side view of Figures 6/7 taking shape.

use std::collections::HashMap;

use expr::{solve_linear, Expr};
use netlist::{ClassId, EquationTable, QExpr, Quantity};

use crate::discretize::{discretize, AuxAllocator};
use crate::AbstractError;

/// The elaborated model: an ordered sequence of constant-time assignments
/// evaluated once per time step, followed by state bookkeeping handled by
/// the execution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Assembly {
    /// `quantity := expression` updates in evaluation order. Expressions
    /// reference inputs, previously assigned quantities, and delayed
    /// (`Prev`) values only.
    pub assignments: Vec<(Quantity, QExpr)>,
    /// The outputs of interest, in request order.
    pub outputs: Vec<Quantity>,
    /// The discretization time step used for `ddt`/`idt`.
    pub dt: f64,
}

impl Assembly {
    /// Total node count across all right-hand sides (a size metric).
    pub fn expression_size(&self) -> usize {
        self.assignments.iter().map(|(_, e)| e.node_count()).sum()
    }

    /// Looks up the assignment defining `q`.
    pub fn assignment(&self, q: &Quantity) -> Option<&QExpr> {
        self.assignments
            .iter()
            .find(|(lhs, _)| lhs == q)
            .map(|(_, e)| e)
    }
}

/// Maximum number of candidate attempts before giving up on pathological
/// topologies.
const SEARCH_BUDGET: usize = 200_000;

/// Solves `q = rhs` for the self-referencing quantity `q`.
///
/// Linear self-references are eliminated directly (Figure 7). A
/// *conditional* right-hand side — the piecewise-linear case of §III-C,
/// e.g. a clamped amplifier inside a feedback loop — is solved arm by arm:
/// each arm yields its own fixpoint, and the guard is re-evaluated with
/// the then-arm's solution substituted, so the consistent piece is
/// selected at run time. Returns `None` for genuinely nonlinear loops.
fn solve_self(q: &Quantity, rhs: &QExpr) -> Option<QExpr> {
    if !rhs.contains_var(q) {
        return Some(rhs.clone());
    }
    if let Some(solved) = solve_linear(&Expr::var(q.clone()), rhs, q) {
        return Some(solved);
    }
    if let Expr::Cond(c, t, e) = rhs {
        let qt = solve_self(q, t)?;
        let qe = solve_self(q, e)?;
        let guard = c.substitute(q, &qt);
        return Some(Expr::cond(guard, qt, qe));
    }
    None
}

/// How algebraic couplings between in-progress quantities are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Exact symbolic elimination: every in-progress coupling is spliced
    /// inline and solved, yielding the fully implicit (backward-Euler)
    /// update. Unconditionally stable, slightly larger expressions.
    #[default]
    Implicit,
    /// Literal reading of §IV-C: only occurrences of the *output of
    /// interest* on its own right-hand side are solved (Figure 7); every
    /// other in-progress coupling reads the value from the previous time
    /// step ("already delayed by Δt"). Generated code stays O(chain
    /// length), but the resulting scheme is semi-explicit: on stiff
    /// multi-state circuits (RC2 and deeper at the paper's Δt = 50 ns)
    /// the delayed couplings are numerically *unstable* — measured in this
    /// repository's ablation experiments — which is why [`SolveMode::Implicit`]
    /// is the default and the mode used for every reproduced table.
    Sequential,
}

enum Memo {
    /// The quantity has a standalone assignment; references stay symbolic.
    Assigned,
    /// The definition is embedded in its ancestors; references clone it.
    Inline(QExpr),
}

enum Undo {
    Class(ClassId),
    Memo(Quantity),
}

enum Fail {
    /// Another candidate choice higher up may still succeed.
    Soft(AbstractError),
    /// Abort the whole search.
    Hard(AbstractError),
}

struct Assembler<'t> {
    table: &'t mut EquationTable,
    dt: f64,
    stack: Vec<Quantity>,
    memo: HashMap<Quantity, Memo>,
    assignments: Vec<(Quantity, QExpr)>,
    aux: AuxAllocator,
    undo: Vec<Undo>,
    attempts: usize,
    /// Globally consistent quantity → class assignment (see
    /// [`compute_matching`]); tried first at every definition.
    matching: HashMap<Quantity, ClassId>,
    mode: SolveMode,
}

/// Computes a maximum bipartite matching between quantities and the
/// dependency classes able to define them (Kuhn's augmenting-path
/// algorithm).
///
/// The paper's Algorithm 2 takes "one equation of each dependency set"
/// greedily; system-wide, that choice is exactly a matching between
/// unknowns and equations. Computing it up front makes chain construction
/// conflict-free in polynomial time — the greedy fetch with backtracking
/// remains only as a fallback for exotic topologies.
fn compute_matching(table: &EquationTable) -> HashMap<Quantity, ClassId> {
    use std::collections::{BTreeMap, HashSet};
    let mut adj: BTreeMap<Quantity, Vec<ClassId>> = BTreeMap::new();
    for cls in table.class_ids() {
        for eq in table.class_members(cls) {
            adj.entry(eq.lhs.clone()).or_default().push(cls);
        }
    }
    let mut class_owner: HashMap<ClassId, Quantity> = HashMap::new();

    fn try_augment(
        q: &Quantity,
        adj: &BTreeMap<Quantity, Vec<ClassId>>,
        class_owner: &mut HashMap<ClassId, Quantity>,
        visited: &mut HashSet<ClassId>,
    ) -> bool {
        let Some(classes) = adj.get(q) else {
            return false;
        };
        for &c in classes {
            if visited.insert(c) {
                let owner = class_owner.get(&c).cloned();
                let free = match owner {
                    None => true,
                    Some(o) => try_augment(&o, adj, class_owner, visited),
                };
                if free {
                    class_owner.insert(c, q.clone());
                    return true;
                }
            }
        }
        false
    }

    for q in adj.keys() {
        let mut visited = HashSet::new();
        try_augment(q, &adj, &mut class_owner, &mut visited);
    }
    class_owner.into_iter().map(|(c, q)| (q, c)).collect()
}

/// Runs assembly for the given outputs against an enriched equation table.
///
/// The table is consumed conceptually: used dependency classes stay
/// disabled so that a subsequent output shares the same consistent matching
/// (call [`EquationTable::reset`] to start over).
///
/// # Errors
///
/// * [`AbstractError::InvalidTimeStep`] for a non-positive/non-finite `dt`.
/// * [`AbstractError::UndefinedOutput`] when an output has no defining
///   chain at all.
/// * [`AbstractError::NoEquationFor`] / [`AbstractError::NonlinearLoop`]
///   when no consistent matching exists.
/// * [`AbstractError::SearchBudgetExhausted`] on pathological topologies.
pub fn assemble(
    table: &mut EquationTable,
    outputs: &[Quantity],
    dt: f64,
) -> Result<Assembly, AbstractError> {
    assemble_with(table, outputs, dt, SolveMode::default())
}

/// [`assemble`] with an explicit coupling [`SolveMode`].
///
/// # Errors
///
/// Same as [`assemble`].
pub fn assemble_with(
    table: &mut EquationTable,
    outputs: &[Quantity],
    dt: f64,
    mode: SolveMode,
) -> Result<Assembly, AbstractError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(AbstractError::InvalidTimeStep { dt });
    }
    let matching = compute_matching(table);
    let mut asm = Assembler {
        table,
        dt,
        stack: Vec::new(),
        memo: HashMap::new(),
        assignments: Vec::new(),
        aux: AuxAllocator::new(),
        undo: Vec::new(),
        attempts: 0,
        matching,
        mode,
    };
    for q in outputs {
        if q.is_input() {
            return Err(AbstractError::UndefinedOutput {
                quantity: q.clone(),
            });
        }
        match asm.define(q) {
            Ok(()) => {}
            Err(Fail::Soft(AbstractError::NoEquationFor { quantity: e }))
                if e == *q && asm.table.candidates(q).is_empty() =>
            {
                return Err(AbstractError::UndefinedOutput {
                    quantity: q.clone(),
                })
            }
            Err(Fail::Soft(e)) | Err(Fail::Hard(e)) => return Err(e),
        }
        // Outputs must be materialized even if their definition ended up
        // inline (possible only through quantities shared between outputs).
        asm.materialize(q);
    }
    asm.finalize(outputs.to_vec())
}

impl Assembler<'_> {
    fn define(&mut self, q: &Quantity) -> Result<(), Fail> {
        if q.is_input() || self.memo.contains_key(q) || self.stack.contains(q) {
            return Ok(());
        }
        let mut candidates: Vec<(netlist::Equation, ClassId)> = self
            .table
            .candidates(q)
            .into_iter()
            .map(|(eq, c)| (eq.clone(), c))
            .collect();
        // The globally matched class (conflict-free by construction) is
        // tried first; the remaining candidates stay as a backtracking
        // fallback for topologies where a matched chain still fails.
        if let Some(&preferred) = self.matching.get(q) {
            candidates.sort_by_key(|&(_, c)| usize::from(c != preferred));
        }
        if candidates.is_empty() {
            return Err(Fail::Soft(AbstractError::NoEquationFor {
                quantity: q.clone(),
            }));
        }
        self.stack.push(q.clone());
        let mut last = AbstractError::NoEquationFor {
            quantity: q.clone(),
        };
        for (eq, cls) in candidates {
            self.attempts += 1;
            if self.attempts > SEARCH_BUDGET {
                self.stack.pop();
                return Err(Fail::Hard(AbstractError::SearchBudgetExhausted));
            }
            let snap = (self.undo.len(), self.assignments.len(), self.aux.len());
            self.table.disable_class(cls);
            self.undo.push(Undo::Class(cls));
            match self.build_rhs(q, &eq.rhs) {
                Ok(rhs) => {
                    self.stack.pop();
                    if std::env::var("AMSVP_DEBUG").is_ok() {
                        eprintln!(
                            "DEFINE {q} := {rhs}  [stack: {:?}]",
                            self.stack.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                        );
                    }
                    let refs_ancestor = {
                        let mut found = false;
                        rhs.visit_vars(&mut |v, delayed| {
                            if !delayed && self.stack.contains(v) {
                                found = true;
                            }
                        });
                        found
                    };
                    if refs_ancestor {
                        self.memo.insert(q.clone(), Memo::Inline(rhs));
                    } else {
                        self.assignments.push((q.clone(), rhs));
                        self.memo.insert(q.clone(), Memo::Assigned);
                    }
                    self.undo.push(Undo::Memo(q.clone()));
                    return Ok(());
                }
                Err(Fail::Hard(e)) => {
                    self.stack.pop();
                    return Err(Fail::Hard(e));
                }
                Err(Fail::Soft(e)) => {
                    if std::env::var("AMSVP_DEBUG").is_ok() {
                        eprintln!("ROLLBACK at {q}: {e}");
                    }
                    self.rollback(snap);
                    last = e;
                }
            }
        }
        self.stack.pop();
        Err(Fail::Soft(last))
    }

    fn rollback(&mut self, snap: (usize, usize, usize)) {
        let (undo_len, asg_len, aux_len) = snap;
        while self.undo.len() > undo_len {
            match self.undo.pop().expect("length checked") {
                Undo::Class(c) => self.table.enable_class(c),
                Undo::Memo(q) => {
                    self.memo.remove(&q);
                }
            }
        }
        self.assignments.truncate(asg_len);
        self.aux.truncate(aux_len);
    }

    /// Splices, discretizes, and solves one fetched right-hand side.
    fn build_rhs(&mut self, q: &Quantity, rhs: &QExpr) -> Result<QExpr, Fail> {
        let spliced = self.splice(rhs)?;
        let disc = discretize(&spliced, self.dt, &mut self.aux).simplified();
        // Derivative resolution distributes over embedded inline chains and
        // can surface current references to quantities that completed as
        // inline definitions since; a second splice resolves them.
        let disc = self.splice(&disc)?;
        let solved = solve_self(q, &disc).ok_or_else(|| {
            Fail::Soft(AbstractError::NonlinearLoop {
                quantity: q.clone(),
            })
        })?;
        Ok(solved.simplified())
    }

    /// Recursively replaces quantity leaves according to the memo table,
    /// defining quantities on first encounter.
    fn splice(&mut self, e: &QExpr) -> Result<QExpr, Fail> {
        Ok(match e {
            Expr::Num(_) | Expr::Prev(..) => e.clone(),
            Expr::Var(v) => {
                if v.is_input() {
                    return Ok(e.clone());
                }
                if self.stack.contains(v) {
                    // In sequential mode, couplings to in-progress
                    // quantities other than the root output read the
                    // previous-step value (the paper's implicit Δt delay).
                    if self.mode == SolveMode::Sequential
                        && self.stack.first() != Some(v)
                        && self.stack.last() != Some(v)
                    {
                        return Ok(Expr::prev(v.clone()));
                    }
                    return Ok(e.clone());
                }
                if !self.memo.contains_key(v) {
                    self.define(v)?;
                }
                match self.memo.get(v) {
                    Some(Memo::Assigned) => e.clone(),
                    // Inline definitions were solved in the context where
                    // they were created; any symbols they carry for
                    // quantities that have completed as inline since must
                    // be substituted for the *current* context, so they are
                    // re-spliced here.
                    Some(Memo::Inline(x)) => {
                        let x = x.clone();
                        self.splice(&x)?
                    }
                    None => unreachable!("define() must memoize on success"),
                }
            }
            Expr::Neg(a) => -self.splice(a)?,
            Expr::Bin(op, a, b) => Expr::bin(*op, self.splice(a)?, self.splice(b)?),
            Expr::Call(f, args) => Expr::Call(
                *f,
                args.iter()
                    .map(|a| self.splice(a))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Ddt(a) => Expr::ddt(self.splice(a)?),
            Expr::Idt(a) => Expr::idt(self.splice(a)?),
            Expr::Cond(c, t, el) => Expr::cond(self.splice(c)?, self.splice(t)?, self.splice(el)?),
        })
    }

    /// Ensures `q` has a standalone assignment, materializing an inline
    /// definition (with ancestors substituted) if necessary.
    fn materialize(&mut self, q: &Quantity) {
        if matches!(self.memo.get(q), Some(Memo::Assigned)) {
            return;
        }
        if let Some(Memo::Inline(x)) = self.memo.get(q) {
            let resolved = self.resolve_inline(&x.clone());
            self.assignments.push((q.clone(), resolved));
            self.memo.insert(q.clone(), Memo::Assigned);
        }
    }

    /// Substitutes remaining inline definitions (ancestor chains) inside an
    /// expression; terminates because inline references strictly climb
    /// ancestor chains toward assigned quantities.
    fn resolve_inline(&self, e: &QExpr) -> QExpr {
        match e {
            Expr::Var(v) => match self.memo.get(v) {
                Some(Memo::Inline(x)) => self.resolve_inline(x),
                _ => e.clone(),
            },
            Expr::Num(_) | Expr::Prev(..) => e.clone(),
            Expr::Neg(a) => -self.resolve_inline(a),
            Expr::Bin(op, a, b) => Expr::bin(*op, self.resolve_inline(a), self.resolve_inline(b)),
            Expr::Call(f, args) => {
                Expr::Call(*f, args.iter().map(|a| self.resolve_inline(a)).collect())
            }
            Expr::Ddt(a) => Expr::ddt(self.resolve_inline(a)),
            Expr::Idt(a) => Expr::idt(self.resolve_inline(a)),
            Expr::Cond(c, t, el) => Expr::cond(
                self.resolve_inline(c),
                self.resolve_inline(t),
                self.resolve_inline(el),
            ),
        }
    }

    /// Appends auxiliary-state updates and materializes every delayed
    /// quantity that lacks storage, then packages the assembly.
    fn finalize(mut self, outputs: Vec<Quantity>) -> Result<Assembly, AbstractError> {
        // Auxiliary updates (idt accumulators, nonlinear ddt states) go
        // after the main sequence; they only feed the next step.
        let pending: Vec<(Quantity, QExpr)> = self
            .aux
            .pending()
            .iter()
            .map(|(q, e)| (q.clone(), self.resolve_inline(e)))
            .collect();
        for (q, e) in pending {
            self.assignments.push((q.clone(), e));
            self.memo.insert(q, Memo::Assigned);
        }
        // Materialize states: any Prev(x) without an assignment needs one
        // so that its previous value exists. Iterate to closure because a
        // materialized definition can reference further delayed inline
        // quantities.
        loop {
            let mut missing: Vec<Quantity> = Vec::new();
            for (_, e) in &self.assignments {
                e.visit_vars(&mut |v, delayed| {
                    if delayed
                        && !v.is_input()
                        && !matches!(self.memo.get(v), Some(Memo::Assigned))
                        && !missing.contains(v)
                    {
                        missing.push(v.clone());
                    }
                });
            }
            if missing.is_empty() {
                break;
            }
            for q in missing {
                match self.memo.get(&q) {
                    Some(Memo::Inline(x)) => {
                        let resolved = self.resolve_inline(&x.clone());
                        self.assignments.push((q.clone(), resolved));
                        self.memo.insert(q, Memo::Assigned);
                    }
                    _ => {
                        // A delayed reference to a quantity that was never
                        // defined cannot be satisfied.
                        return Err(AbstractError::NoEquationFor { quantity: q });
                    }
                }
            }
        }
        // Affine compaction: flatten linear updates into the
        // constant-coefficient statements of Figure 7(b). Without it the
        // substitution fill-in grows polynomially with circuit depth.
        let assignments = self
            .assignments
            .into_iter()
            .map(|(q, e)| (q, crate::compact::compact(&e)))
            .collect();
        Ok(Assembly {
            assignments,
            outputs,
            dt: self.dt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::acquire;
    use crate::enrich::enrich;
    use vams_parser::parse_module;

    fn assemble_src(src: &str, outputs: &[Quantity], dt: f64) -> Assembly {
        let m = parse_module(src).unwrap();
        let model = acquire(&m).unwrap();
        let mut table = enrich(&model).unwrap();
        assemble(&mut table, outputs, dt).unwrap()
    }

    const RC1: &str = "module rc(in, out);
        input in; output out;
        parameter real R = 5k;
        parameter real C = 25n;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ R * I(res);
          I(cap) <+ C * ddt(V(cap));
        end
      endmodule";

    /// Steps an assembly naively via tree evaluation (tests only).
    fn run(asm: &Assembly, inputs: &[(&str, f64)], steps: usize) -> f64 {
        let mut state: HashMap<(Quantity, u32), f64> = HashMap::new();
        let out = asm.outputs[0].clone();
        let mut result = 0.0;
        for _ in 0..steps {
            for (q, e) in &asm.assignments {
                let v = e
                    .eval(&mut |v: &Quantity, delay| {
                        if delay == 0 {
                            if let Quantity::Input(n) = v {
                                return inputs.iter().find(|(k, _)| k == n).map(|&(_, x)| x);
                            }
                            state.get(&(v.clone(), 0)).copied()
                        } else {
                            Some(state.get(&(v.clone(), delay)).copied().unwrap_or(0.0))
                        }
                    })
                    .unwrap();
                state.insert((q.clone(), 0), v);
            }
            result = state[&(out.clone(), 0)];
            // Shift delays (support up to 2).
            let snapshot: Vec<((Quantity, u32), f64)> =
                state.iter().map(|(k, &v)| (k.clone(), v)).collect();
            for ((q, d), v) in snapshot {
                if d == 0 {
                    state.insert((q.clone(), 1), v);
                } else if d == 1 {
                    state.insert((q.clone(), 2), v);
                }
            }
            // Input prev.
            for (n, x) in inputs {
                state.insert((Quantity::input(*n), 1), *x);
            }
        }
        result
    }

    #[test]
    fn rc1_produces_single_backward_euler_assignment() {
        let dt = 50e-9;
        let asm = assemble_src(RC1, &[Quantity::node_v("out")], dt);
        // The paper's Figure 7: one update statement for the output.
        assert_eq!(asm.assignments.len(), 1);
        let (lhs, rhs) = &asm.assignments[0];
        assert_eq!(*lhs, Quantity::node_v("out"));
        // No current self-reference survives the solve.
        assert!(!rhs.contains_var(lhs));
        // out = (u + k·prev) / (1 + k) with k = RC/dt.
        let k = 5000.0 * 25e-9 / dt;
        let got = rhs
            .eval(&mut |q: &Quantity, delay| match (q, delay) {
                (Quantity::Input(_), 0) => Some(1.0),
                (Quantity::NodeV(_), 1) => Some(0.25),
                _ => None,
            })
            .unwrap();
        let want = (1.0 + k * 0.25) / (1.0 + k);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn rc1_step_response_matches_analytic() {
        // dt = τ/100; after τ the step response reaches 1 − e⁻¹ within the
        // backward-Euler error budget.
        let tau = 5000.0 * 25e-9;
        let dt = tau / 100.0;
        let asm = assemble_src(RC1, &[Quantity::node_v("out")], dt);
        let v = run(&asm, &[("in", 1.0)], 100);
        let analytic = 1.0 - (-1.0_f64).exp();
        assert!((v - analytic).abs() < 5e-3, "{v} vs {analytic}");
    }

    #[test]
    fn rc2_couples_states_implicitly() {
        let src = "module rc2(in, out);
            input in; output out;
            parameter real R = 5k;
            parameter real C = 25n;
            electrical in, n1, out, gnd;
            ground gnd;
            branch (in, n1) r1;
            branch (n1, out) r2;
            branch (n1, gnd) c1;
            branch (out, gnd) c2;
            analog begin
              V(r1) <+ R * I(r1);
              V(r2) <+ R * I(r2);
              I(c1) <+ C * ddt(V(c1));
              I(c2) <+ C * ddt(V(c2));
            end
          endmodule";
        let tau = 5000.0 * 25e-9;
        let dt = tau / 200.0;
        let asm = assemble_src(src, &[Quantity::node_v("out")], dt);
        // Two states (the capacitor nodes) must have assignments.
        assert!(asm.assignment(&Quantity::node_v("out")).is_some());
        assert!(
            asm.assignments.len() >= 2,
            "internal state n1 must be materialized: {:?}",
            asm.assignments
                .iter()
                .map(|(q, _)| q.clone())
                .collect::<Vec<_>>()
        );
        // Long-run step response settles to 1 (no leakage paths).
        let v = run(&asm, &[("in", 1.0)], 4000);
        assert!((v - 1.0).abs() < 2e-2, "settles to the input, got {v}");
    }

    #[test]
    fn divider_is_static() {
        // Pure resistive divider: no states, exact algebra.
        let src = "module div(in, out);
            input in; output out;
            electrical in, out, gnd;
            ground gnd;
            branch (in, out) r1;
            branch (out, gnd) r2;
            analog begin
              V(r1) <+ 1k * I(r1);
              V(r2) <+ 3k * I(r2);
            end
          endmodule";
        let asm = assemble_src(src, &[Quantity::node_v("out")], 1e-6);
        let v = run(&asm, &[("in", 4.0)], 3);
        assert!(
            (v - 3.0).abs() < 1e-9,
            "4 V over 1k/3k divides to 3 V, got {v}"
        );
    }

    #[test]
    fn vcvs_feedback_is_solved_implicitly() {
        // Inverting amplifier with explicit high-gain VCVS: the algebraic
        // loop must be eliminated, not delayed.
        let src = "module inv(in, out);
            input in; output out;
            electrical in, inm, out, gnd;
            ground gnd;
            branch (in, inm) r1;
            branch (inm, out) r2;
            branch (out, gnd) src;
            analog begin
              V(r1) <+ 1k * I(r1);
              V(r2) <+ 4k * I(r2);
              V(src) <+ -100k * V(inm, gnd);
            end
          endmodule";
        let asm = assemble_src(src, &[Quantity::node_v("out")], 1e-6);
        let v = run(&asm, &[("in", 1.0)], 3);
        // Ideal gain −R2/R1 = −4; with A₀ = 1e5 the error is ~5/A₀.
        assert!((v + 4.0).abs() < 1e-3, "inverting gain, got {v}");
        // Crucially the value is already correct at the FIRST step — no
        // delayed relaxation through the loop.
        let v1 = run(&asm, &[("in", 1.0)], 1);
        assert!(
            (v1 + 4.0).abs() < 1e-3,
            "implicit solve at step 1, got {v1}"
        );
    }

    #[test]
    fn output_of_interest_restricts_cone() {
        // Two independent RC branches; asking for one must not pull in the
        // other (Figure 3's subset extraction).
        let src = "module two(in, o1, o2);
            input in; output o1; output o2;
            parameter real R = 1k;
            parameter real C = 1u;
            electrical in, o1, o2, gnd;
            ground gnd;
            branch (in, o1) ra;
            branch (o1, gnd) ca;
            branch (in, o2) rb;
            branch (o2, gnd) cb;
            analog begin
              V(ra) <+ R * I(ra);
              I(ca) <+ C * ddt(V(ca));
              V(rb) <+ R * I(rb);
              I(cb) <+ C * ddt(V(cb));
            end
          endmodule";
        let asm = assemble_src(src, &[Quantity::node_v("o1")], 1e-6);
        for (q, e) in &asm.assignments {
            assert!(q.name() != "o2", "o2 must not be defined");
            assert!(
                !e.variables()
                    .iter()
                    .any(|v| v.name() == "o2" || v.name() == "rb" || v.name() == "cb"),
                "cone for o1 must not touch the o2 branch: {q} = {e}"
            );
        }
    }

    #[test]
    fn both_outputs_share_a_consistent_matching() {
        let src = "module rc(in, out);
            input in; output out;
            electrical in, out, gnd;
            ground gnd;
            branch (in, out) res;
            branch (out, gnd) cap;
            analog begin
              V(res) <+ 5k * I(res);
              I(cap) <+ 25n * ddt(V(cap));
            end
          endmodule";
        let m = parse_module(src).unwrap();
        let model = acquire(&m).unwrap();
        let mut table = enrich(&model).unwrap();
        let asm = assemble(
            &mut table,
            &[Quantity::node_v("out"), Quantity::branch_i("cap")],
            1e-6,
        )
        .unwrap();
        assert!(asm.assignment(&Quantity::node_v("out")).is_some());
        assert!(asm.assignment(&Quantity::branch_i("cap")).is_some());
    }

    #[test]
    fn piecewise_linear_loop_solved_per_arm() {
        // x = clamp(u − 2x): each arm solves to its own fixpoint and the
        // guard picks the consistent piece.
        use expr::BinOp;
        let x = Quantity::var("x");
        let u = Quantity::input("u");
        let inner = Expr::var(u.clone()) - Expr::num(2.0) * Expr::var(x.clone());
        let rhs = Expr::cond(
            Expr::bin(BinOp::Gt, inner.clone(), Expr::num(1.0)),
            Expr::num(1.0),
            inner,
        );
        let solved = solve_self(&x, &rhs).expect("PWL loop solves");
        assert!(!solved.contains_var(&x));
        let eval_at = |uv: f64| {
            solved
                .eval(&mut |q: &Quantity, _| q.is_input().then_some(uv))
                .unwrap()
        };
        // Linear region: x = u/3 while u − 2x = u/3 ≤ 1 (u ≤ 3).
        assert!((eval_at(1.5) - 0.5).abs() < 1e-12);
        // Clamped region: x = 1 when u − 2·1 > 1 (u > 3).
        assert!((eval_at(6.0) - 1.0).abs() < 1e-12);

        // A truly nonlinear loop still fails.
        let bad = Expr::var(x.clone()) * Expr::var(x.clone());
        assert!(solve_self(&x, &bad).is_none());
    }

    #[test]
    fn bad_dt_rejected() {
        let m = parse_module(RC1).unwrap();
        let model = acquire(&m).unwrap();
        let mut table = enrich(&model).unwrap();
        assert!(matches!(
            assemble(&mut table, &[Quantity::node_v("out")], 0.0),
            Err(AbstractError::InvalidTimeStep { dt: _ })
        ));
        assert!(matches!(
            assemble(&mut table, &[Quantity::node_v("out")], f64::NAN),
            Err(AbstractError::InvalidTimeStep { dt: _ })
        ));
    }

    #[test]
    fn unknown_output_rejected() {
        let m = parse_module(RC1).unwrap();
        let model = acquire(&m).unwrap();
        let mut table = enrich(&model).unwrap();
        assert!(matches!(
            assemble(&mut table, &[Quantity::node_v("ghost")], 1e-6),
            Err(AbstractError::UndefinedOutput { quantity: _ })
        ));
        let mut table2 = enrich(&model).unwrap();
        assert!(matches!(
            assemble(&mut table2, &[Quantity::input("in")], 1e-6),
            Err(AbstractError::UndefinedOutput { quantity: _ })
        ));
    }
}
